"""RLP encoder/decoder.

The format (Ethereum Yellow Paper, appendix B):

* A single byte in ``[0x00, 0x7f]`` is its own encoding.
* A byte string of length 0..55 is prefixed with ``0x80 + len``.
* A longer byte string is prefixed with ``0xb7 + len(len_bytes)`` followed
  by the big-endian length.
* A list whose total payload is 0..55 bytes is prefixed with ``0xc0 + len``.
* A longer list is prefixed with ``0xf7 + len(len_bytes)`` followed by the
  big-endian payload length.

Encodable Python types: ``bytes``/``bytearray``, ``int`` (non-negative,
encoded as a minimal big-endian string), ``str`` (UTF-8), and sequences
(``list``/``tuple``) of encodable items.  Decoding always produces
``bytes`` leaves; integer interpretation is up to the caller via
:func:`decode_uint`.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RLPDecodingError, RLPEncodingError

_SHORT_STRING_OFFSET = 0x80
_LONG_STRING_OFFSET = 0xB7
_SHORT_LIST_OFFSET = 0xC0
_LONG_LIST_OFFSET = 0xF7
_MAX_SHORT_LENGTH = 55


def encode_uint(value: int) -> bytes:
    """Encode a non-negative integer as a minimal big-endian byte string.

    Zero encodes to the empty string, per the Yellow Paper.
    """
    if value < 0:
        raise RLPEncodingError(f"cannot RLP-encode negative integer {value}")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def decode_uint(payload: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    if payload and payload[0] == 0:
        raise RLPDecodingError("integer payload has leading zero byte")
    return int.from_bytes(payload, "big")


def _encode_length(length: int, short_offset: int) -> bytes:
    if length <= _MAX_SHORT_LENGTH:
        return bytes([short_offset + length])
    length_bytes = encode_uint(length)
    long_offset = short_offset + _MAX_SHORT_LENGTH
    return bytes([long_offset + len(length_bytes)]) + length_bytes


def _as_payload(item: Any) -> bytes:
    if isinstance(item, (bytes, bytearray)):
        return bytes(item)
    if isinstance(item, bool):
        # bool is an int subclass; reject explicitly to avoid surprises.
        raise RLPEncodingError("cannot RLP-encode bool; use int 0/1 explicitly")
    if isinstance(item, int):
        return encode_uint(item)
    if isinstance(item, str):
        return item.encode("utf-8")
    raise RLPEncodingError(f"cannot RLP-encode object of type {type(item).__name__}")


def encode(item: Any) -> bytes:
    """Encode an item (byte string, int, str, or nested sequence) to RLP."""
    if isinstance(item, (list, tuple)):
        payload = b"".join(encode(sub) for sub in item)
        return _encode_length(len(payload), _SHORT_LIST_OFFSET) + payload
    payload = _as_payload(item)
    if len(payload) == 1 and payload[0] < _SHORT_STRING_OFFSET:
        return payload
    return _encode_length(len(payload), _SHORT_STRING_OFFSET) + payload


def length_of(item: Any) -> int:
    """Return ``len(encode(item))`` without concatenating intermediate buffers.

    Useful for size accounting in the workload model where only encoded
    sizes matter (e.g. sizing a synthetic receipt list).
    """
    if isinstance(item, (list, tuple)):
        payload_len = sum(length_of(sub) for sub in item)
        return _prefix_len(payload_len) + payload_len
    payload = _as_payload(item)
    if len(payload) == 1 and payload[0] < _SHORT_STRING_OFFSET:
        return 1
    return _prefix_len(len(payload)) + len(payload)


def _prefix_len(payload_len: int) -> int:
    if payload_len <= _MAX_SHORT_LENGTH:
        return 1
    return 1 + len(encode_uint(payload_len))


def decode(blob: bytes) -> Any:
    """Decode an RLP blob into bytes or nested lists of bytes.

    Raises :class:`RLPDecodingError` if the blob is malformed or has
    trailing bytes.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise RLPDecodingError(f"expected bytes, got {type(blob).__name__}")
    item, consumed = _decode_at(bytes(blob), 0)
    if consumed != len(blob):
        raise RLPDecodingError(
            f"trailing bytes: consumed {consumed} of {len(blob)}"
        )
    return item


def _read_length(blob: bytes, offset: int, length_of_length: int) -> tuple[int, int]:
    end = offset + length_of_length
    if end > len(blob):
        raise RLPDecodingError("truncated length field")
    length_bytes = blob[offset:end]
    if length_bytes[0] == 0:
        raise RLPDecodingError("length field has leading zero")
    length = int.from_bytes(length_bytes, "big")
    if length <= _MAX_SHORT_LENGTH:
        raise RLPDecodingError("long form used for short payload")
    return length, end


def _decode_at(blob: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(blob):
        raise RLPDecodingError("unexpected end of input")
    prefix = blob[offset]
    if prefix < _SHORT_STRING_OFFSET:
        return blob[offset : offset + 1], offset + 1
    if prefix <= _LONG_STRING_OFFSET:
        length = prefix - _SHORT_STRING_OFFSET
        start = offset + 1
        payload = _take(blob, start, length)
        if length == 1 and payload[0] < _SHORT_STRING_OFFSET:
            raise RLPDecodingError("single byte below 0x80 must be encoded as itself")
        return payload, start + length
    if prefix < _SHORT_LIST_OFFSET:
        length, start = _read_length(blob, offset + 1, prefix - _LONG_STRING_OFFSET)
        payload = _take(blob, start, length)
        return payload, start + length
    if prefix <= _LONG_LIST_OFFSET:
        length = prefix - _SHORT_LIST_OFFSET
        start = offset + 1
    else:
        length, start = _read_length(blob, offset + 1, prefix - _LONG_LIST_OFFSET)
    _take(blob, start, length)  # bounds check before iterating
    items = []
    cursor = start
    end = start + length
    while cursor < end:
        item, cursor = _decode_at(blob, cursor)
        if cursor > end:
            raise RLPDecodingError("list item overruns list payload")
        items.append(item)
    return items, end


def _take(blob: bytes, start: int, length: int) -> bytes:
    end = start + length
    if end > len(blob):
        raise RLPDecodingError("truncated payload")
    return blob[start:end]
