"""repro — Ethereum KV-storage workload analysis (IISWC 2025 reproduction).

Reproduces "An Analysis of Ethereum Workloads from a Key-Value Storage
Perspective" (Ren, Zhao, Li, Lee — IISWC 2025) as a self-contained
Python system:

* a full simulation of Geth's data-management stack (tries, snapshot,
  caches, freezer, indexers) over a synthetic mainnet-like workload,
  traced at the KV-store interface;
* the paper's trace-analysis framework (29-class taxonomy, size /
  operation-distribution / correlation analyses, the 11-findings
  engine);
* the paper's proposed designs (hybrid KV storage, correlation-aware
  caching) for ablation studies.

Quickstart::

    from repro import run_trace_pair, TraceAnalysis, evaluate_findings

    cache, bare = run_trace_pair(num_blocks=100, warmup_blocks=50)
    ca = TraceAnalysis("CacheTrace", cache.records, cache.store_snapshot)
    ba = TraceAnalysis("BareTrace", bare.records, bare.store_snapshot)
    print(evaluate_findings(ca, ba).render())
"""

from repro.core.analysis import TraceAnalysis
from repro.core.classes import KVClass, classify_key
from repro.core.findings import evaluate_findings
from repro.core.trace import OpType, TraceReader, TraceRecord, TraceWriter
from repro.errors import CrashPoint, FaultInjectionError, SimulatedCrash, TransientIOError
from repro.faults import (
    CrashTestConfig,
    FaultInjectingStore,
    FaultKind,
    FaultPlan,
    FaultRule,
    run_crash_sweep,
)
from repro.gethdb.database import DBConfig
from repro.sync.driver import FullSyncDriver, SyncConfig, SyncResult, run_trace_pair
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "TraceAnalysis",
    "KVClass",
    "classify_key",
    "evaluate_findings",
    "OpType",
    "TraceRecord",
    "TraceReader",
    "TraceWriter",
    "CrashPoint",
    "CrashTestConfig",
    "FaultInjectionError",
    "FaultInjectingStore",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "SimulatedCrash",
    "TransientIOError",
    "run_crash_sweep",
    "DBConfig",
    "SyncConfig",
    "SyncResult",
    "FullSyncDriver",
    "run_trace_pair",
    "WorkloadConfig",
    "WorkloadGenerator",
    "__version__",
]
