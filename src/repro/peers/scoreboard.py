"""Peer scoring, selection, and demotion.

The scoreboard keeps per-peer service statistics (success/failure/stale
counts, an EWMA of observed latency) and converts them into a scalar
score the scheduler uses for peer selection.  Peers that fail
``demote_after`` requests in a row are demoted — removed from the
candidate set for ``cooldown_s`` of virtual time — then readmitted with
their consecutive-failure counter cleared, mirroring how real sync
clients bench misbehaving peers rather than banning them outright.

Everything is deterministic: scores are pure functions of the recorded
history and ties break on the peer id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class PeerStats:
    """Mutable service history for one peer."""

    ok: int = 0
    failures: int = 0
    stale: int = 0
    consecutive_failures: int = 0
    ewma_latency_s: float = 0.0
    demoted_until: float = field(default=0.0, compare=False)
    demotions: int = 0

    @property
    def total(self) -> int:
        return self.ok + self.failures


class PeerScoreboard:
    """Deterministic peer ranking with failure-driven demotion."""

    def __init__(
        self,
        demote_after: int = 3,
        cooldown_s: float = 2.0,
        ewma_alpha: float = 0.2,
    ) -> None:
        self.demote_after = demote_after
        self.cooldown_s = cooldown_s
        self.ewma_alpha = ewma_alpha
        self._stats: dict[str, PeerStats] = {}

    # -- registration / access ------------------------------------------------

    def register(self, peer_id: str) -> None:
        self._stats.setdefault(peer_id, PeerStats())

    def stats(self, peer_id: str) -> PeerStats:
        return self._stats[peer_id]

    def peer_ids(self) -> list[str]:
        return sorted(self._stats)

    @property
    def demotions_total(self) -> int:
        return sum(s.demotions for s in self._stats.values())

    # -- recording ------------------------------------------------------------

    def record_ok(self, peer_id: str, latency_s: float) -> None:
        stats = self._stats[peer_id]
        stats.ok += 1
        stats.consecutive_failures = 0
        if stats.ewma_latency_s == 0.0:
            stats.ewma_latency_s = latency_s
        else:
            alpha = self.ewma_alpha
            stats.ewma_latency_s = alpha * latency_s + (1 - alpha) * stats.ewma_latency_s

    def record_failure(self, peer_id: str, now: float, stale: bool = False) -> bool:
        """Record one failed request; returns True when this demotes the peer."""
        stats = self._stats[peer_id]
        stats.failures += 1
        if stale:
            stats.stale += 1
        stats.consecutive_failures += 1
        if stats.consecutive_failures >= self.demote_after:
            stats.demoted_until = now + self.cooldown_s
            stats.consecutive_failures = 0
            stats.demotions += 1
            return True
        return False

    # -- selection ------------------------------------------------------------

    def is_demoted(self, peer_id: str, now: float) -> bool:
        return now < self._stats[peer_id].demoted_until

    def next_readmission(self, now: float) -> Optional[float]:
        """Earliest future time a demoted peer comes back, if any."""
        times = [
            s.demoted_until for s in self._stats.values() if s.demoted_until > now
        ]
        return min(times) if times else None

    def score(self, peer_id: str) -> float:
        """Higher is better: success ratio discounted by EWMA latency.

        Unproven peers score as if perfectly reliable (optimistic start)
        so fresh peers get traffic before their history exists.
        """
        stats = self._stats[peer_id]
        ratio = stats.ok / stats.total if stats.total else 1.0
        return ratio / (1.0 + stats.ewma_latency_s)

    def select(
        self,
        now: float,
        outstanding: dict[str, int],
        limit: int,
    ) -> Optional[str]:
        """Best non-demoted peer with spare outstanding capacity.

        Returns None when every peer is demoted or saturated.  Ties
        break on peer id so selection is reproducible.
        """
        best: Optional[str] = None
        best_key: Optional[tuple[float, str]] = None
        for peer_id in sorted(self._stats):
            if self.is_demoted(peer_id, now):
                continue
            if outstanding.get(peer_id, 0) >= limit:
                continue
            key = (-self.score(peer_id), peer_id)
            if best_key is None or key < best_key:
                best_key = key
                best = peer_id
        return best
