"""Simulated peer network for beam sync.

The subsystem has four parts:

* :mod:`repro.peers.messages` — request/reply types
  (:class:`NodeRequest`, :class:`PeerReply`): account-trie nodes,
  storage-trie nodes, and bytecode, each carrying the hash the answer
  must verify against;
* :mod:`repro.peers.simulated` — :class:`SimulatedPeer`: a reference
  full node wrapped in a seeded latency/failure profile
  (:class:`PeerBehavior`; drop, timeout, stale-answer, slow-peer),
  overridable per-request by fault-plan PEER_DROP/PEER_SLOW rules;
* :mod:`repro.peers.scoreboard` — :class:`PeerScoreboard`: per-peer
  service history, scoring, and consecutive-failure demotion with a
  virtual-time cooldown;
* :mod:`repro.peers.scheduler` — :class:`RequestScheduler`: the
  virtual-clock fetch engine with per-peer outstanding-request limits,
  deadlines, hash verification, and exponential-backoff retries.

:mod:`repro.peers.metrics` declares the ``repro_peer_*`` /
``repro_beam_*`` families, mergeable by ``repro stats``.
"""

from repro.peers.messages import NodeRequest, PeerReply, RequestKind
from repro.peers.metrics import PeerNetMetrics
from repro.peers.scheduler import RequestScheduler, SchedulerConfig
from repro.peers.scoreboard import PeerScoreboard, PeerStats
from repro.peers.simulated import (
    PEER_PROFILES,
    PeerBehavior,
    SimulatedPeer,
    behavior_from_profile,
    build_peer_network,
)

__all__ = [
    "PEER_PROFILES",
    "NodeRequest",
    "PeerBehavior",
    "PeerNetMetrics",
    "PeerReply",
    "PeerScoreboard",
    "PeerStats",
    "RequestKind",
    "RequestScheduler",
    "SchedulerConfig",
    "SimulatedPeer",
    "behavior_from_profile",
    "build_peer_network",
]
