"""Peer-network and beam-sync metric families.

Same contract as every other subsystem's metrics module: fixed names,
fixed labels, fixed exponential buckets, so snapshots from any beam run
merge associatively under ``repro stats`` with snapshots from any other
subsystem or process.
"""

from __future__ import annotations

from repro.obs import MetricsRegistry, exponential_buckets

#: Peer service latency bounds: 100 µs .. ~1677 s in powers of two —
#: wide enough for healthy draws, slow-peer scaling, and backoff waits.
PEER_LATENCY_BUCKETS = exponential_buckets(1e-4, 2.0, 24)


class PeerNetMetrics:
    """Cached children for the `repro_peer_*` / `repro_beam_*` families."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._requests = registry.counter(
            "repro_peer_requests_total",
            "peer requests by final disposition",
            ("peer", "kind", "outcome"),
        )
        self._latency = registry.histogram(
            "repro_peer_latency_seconds",
            "peer-side service latency of successful requests (virtual time)",
            ("peer",),
            buckets=PEER_LATENCY_BUCKETS,
        )
        self._score = registry.gauge(
            "repro_peer_score", "scoreboard score at last update", ("peer",)
        )
        self._demotions = registry.counter(
            "repro_peer_demotions_total", "scoreboard demotions", ("peer",)
        )
        self.retries = registry.counter(
            "repro_beam_retries_total", "requests re-dispatched after a failure"
        )
        self._pauses = registry.counter(
            "repro_beam_pauses_total",
            "execution pauses on missing state, by missing-state kind",
            ("kind",),
        )
        self._healed = registry.counter(
            "repro_beam_nodes_healed_total",
            "nodes fetched and persisted into the local store",
            ("trie",),
        )
        self.fetch_wait = registry.histogram(
            "repro_beam_fetch_wait_seconds",
            "virtual time execution spent paused per fetch round",
            buckets=PEER_LATENCY_BUCKETS,
        )
        self.blocks = registry.counter(
            "repro_beam_blocks_total", "blocks imported by beam sync"
        )
        self._request_children: dict[tuple[str, str, str], object] = {}
        self._latency_children: dict[str, object] = {}

    # -- hot-path helpers -----------------------------------------------------

    def count_request(self, peer: str, kind: str, outcome: str) -> None:
        key = (peer, kind, outcome)
        child = self._request_children.get(key)
        if child is None:
            child = self._requests.labels(peer=peer, kind=kind, outcome=outcome)
            self._request_children[key] = child
        child.inc()

    def observe_latency(self, peer: str, latency_s: float) -> None:
        child = self._latency_children.get(peer)
        if child is None:
            child = self._latency.labels(peer=peer)
            self._latency_children[peer] = child
        child.observe(latency_s)

    def set_score(self, peer: str, score: float) -> None:
        self._score.labels(peer=peer).set(score)

    def count_demotion(self, peer: str) -> None:
        self._demotions.labels(peer=peer).inc()

    def count_pause(self, kind: str) -> None:
        self._pauses.labels(kind=kind).inc()

    def count_healed(self, trie: str) -> None:
        self._healed.labels(trie=trie).inc()
