"""Request/reply message types for the simulated peer network.

Beam sync asks peers for exactly three things — the same trio trinity's
``CollectMissingAccount`` / ``CollectMissingBytecode`` /
``CollectMissingStorage`` events carry: an account-trie node by path, a
storage-trie node by ``(owner, path)``, or a contract bytecode blob by
code hash.  Every request carries the hash the answer must verify
against (taken from the parent node or the account record), so a peer
can never poison the local store: a stale or corrupt reply simply fails
verification and is retried elsewhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.trie.nibbles import Nibbles


class RequestKind(enum.Enum):
    """What a :class:`NodeRequest` is asking for."""

    ACCOUNT_NODE = "account-node"
    STORAGE_NODE = "storage-node"
    BYTECODE = "bytecode"


@dataclass(frozen=True)
class NodeRequest:
    """One state-fetch request.

    ``expected_hash`` is the sha3-256 the reply blob must hash to —
    the child hash stored in the parent trie node, the pivot state root
    (for the account-trie root), the account's ``storage_root`` (for a
    storage-trie root), or the account's ``code_hash`` (for bytecode).
    """

    kind: RequestKind
    expected_hash: bytes
    #: absolute nibble path, for trie-node requests
    path: Nibbles = ()
    #: owning account hash, for storage-node requests
    owner: bytes = b""
    #: code hash, for bytecode requests (equals ``expected_hash``)
    code_hash: bytes = b""

    def describe(self) -> str:
        if self.kind is RequestKind.BYTECODE:
            return f"bytecode {self.code_hash[:4].hex()}"
        owner = f" of {self.owner[:4].hex()}" if self.owner else ""
        return f"{self.kind.value} at {''.join(f'{n:x}' for n in self.path)!r}{owner}"


@dataclass(frozen=True)
class PeerReply:
    """One peer's answer to a :class:`NodeRequest`.

    ``blob is None`` models a dropped request (no bytes ever arrive);
    the scheduler converts it into a timeout at the request deadline.
    A ``stale`` reply carries deterministically corrupted bytes that
    fail hash verification — the model for a peer answering from an
    outdated or wrong state.
    """

    blob: Optional[bytes]
    #: peer-side service latency in virtual seconds
    latency_s: float
    #: peer-side behavior label: "ok", "drop", "timeout", "stale", "missing"
    behavior: str = "ok"
