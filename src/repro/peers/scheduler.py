"""Virtual-clock request scheduler over the simulated peer set.

The scheduler runs the whole fetch protocol in *virtual time*: peers
return a latency per reply, the scheduler keeps an event queue keyed by
completion time, and ``self.now`` advances from event to event — no real
sleeps, so a soak with thousands of requests and multi-second simulated
backoffs finishes in milliseconds and is bit-for-bit reproducible.

Per request the scheduler:

1. picks the best-scoring peer with spare outstanding capacity
   (per-peer limits model real sync clients' bounded request windows);
2. applies the deadline: drops and over-deadline replies fail at
   ``timeout_s``, not at their (possibly infinite) arrival time;
3. verifies every reply against the request's expected sha3-256, so
   stale answers are detected and charged to the peer;
4. on failure, retries elsewhere after exponential backoff, up to
   ``max_attempts``; the scoreboard demotes peers that fail
   consecutively, taking them out of selection for a cooldown.

``fetch_many`` overlaps many requests — the wave-parallel path the beam
driver uses to heal all paths a block touches concurrently.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.errors import PeerNetworkError
from repro.faults.plan import FaultPlan
from repro.peers.messages import NodeRequest
from repro.peers.metrics import PeerNetMetrics
from repro.peers.scoreboard import PeerScoreboard
from repro.peers.simulated import SimulatedPeer
from repro.trie.trie import node_hash


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables for the fetch protocol (all times in virtual seconds)."""

    timeout_s: float = 0.25
    #: total tries per request, first dispatch included
    max_attempts: int = 10
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    per_peer_outstanding: int = 4
    demote_after: int = 3
    cooldown_s: float = 2.0


class RequestScheduler:
    """Deterministic multi-peer fetcher with retry, backoff, and scoring."""

    def __init__(
        self,
        peers: list[SimulatedPeer],
        config: Optional[SchedulerConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        metrics: Optional[PeerNetMetrics] = None,
    ) -> None:
        if not peers:
            raise PeerNetworkError("scheduler needs at least one peer")
        self.config = config if config is not None else SchedulerConfig()
        self.peers = {peer.peer_id: peer for peer in peers}
        if len(self.peers) != len(peers):
            raise PeerNetworkError("duplicate peer ids in peer set")
        self.scoreboard = PeerScoreboard(
            demote_after=self.config.demote_after,
            cooldown_s=self.config.cooldown_s,
        )
        for peer_id in self.peers:
            self.scoreboard.register(peer_id)
        self.fault_plan = fault_plan
        self.metrics = metrics
        #: virtual clock, monotonic across fetches
        self.now = 0.0
        #: block height reported to fault-plan peer rules
        self.block = 0
        #: requests re-dispatched after a failure (lifetime total)
        self.retries = 0
        self.fetched = 0
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- fetching -------------------------------------------------------------

    def fetch(self, request: NodeRequest) -> bytes:
        """Fetch one blob; raises PeerNetworkError when retries exhaust."""
        return self.fetch_many([request])[request]

    def fetch_many(self, requests: list[NodeRequest]) -> dict[NodeRequest, bytes]:
        """Fetch a wave of blobs concurrently in virtual time.

        Duplicate requests are coalesced.  Returns a dict keyed by
        request; raises :class:`~repro.errors.PeerNetworkError` if any
        request exhausts its attempts.
        """
        cfg = self.config
        results: dict[NodeRequest, bytes] = {}
        # (not_before, seq, request, attempt)
        pending: list[tuple[float, int, NodeRequest, int]] = [
            (self.now, self._next_seq(), request, 1)
            for request in dict.fromkeys(requests)
        ]
        heapq.heapify(pending)
        # (completion, seq, peer_id, request, attempt, reply, timed_out)
        in_flight: list = []
        outstanding = {peer_id: 0 for peer_id in self.peers}

        while pending or in_flight:
            # Dispatch every ready request some peer has capacity for.
            while pending and pending[0][0] <= self.now:
                peer_id = self.scoreboard.select(
                    self.now, outstanding, cfg.per_peer_outstanding
                )
                if peer_id is None:
                    break
                _, _, request, attempt = heapq.heappop(pending)
                reply = self.peers[peer_id].serve(
                    request, cfg.timeout_s, block=self.block, fault_plan=self.fault_plan
                )
                arrival = self.now + reply.latency_s
                deadline = self.now + cfg.timeout_s
                undeliverable = reply.blob is None and reply.behavior in (
                    "drop",
                    "timeout",
                )
                timed_out = undeliverable or arrival > deadline
                completion = deadline if timed_out else arrival
                heapq.heappush(
                    in_flight,
                    (
                        completion,
                        self._next_seq(),
                        peer_id,
                        request,
                        attempt,
                        reply,
                        timed_out,
                    ),
                )
                outstanding[peer_id] += 1

            if in_flight:
                completion, _, peer_id, request, attempt, reply, timed_out = (
                    heapq.heappop(in_flight)
                )
                self.now = max(self.now, completion)
                outstanding[peer_id] -= 1
                self._settle(
                    results, pending, peer_id, request, attempt, reply, timed_out
                )
                continue

            # Nothing in flight: advance the clock to the next backoff
            # expiry or demotion readmission, whichever comes first.
            wakeups = []
            if pending and pending[0][0] > self.now:
                wakeups.append(pending[0][0])
            readmission = self.scoreboard.next_readmission(self.now)
            if readmission is not None:
                wakeups.append(readmission)
            if not wakeups:
                raise PeerNetworkError(
                    "scheduler stalled: requests pending but no peer available"
                )
            self.now = min(wakeups)

        return results

    def _settle(
        self,
        results: dict[NodeRequest, bytes],
        pending: list,
        peer_id: str,
        request: NodeRequest,
        attempt: int,
        reply,
        timed_out: bool,
    ) -> None:
        """Classify one completed request; record, retry, or raise."""
        cfg = self.config
        kind = request.kind.value
        stale = False
        if not timed_out and reply.blob is not None:
            if node_hash(reply.blob) == request.expected_hash:
                results[request] = reply.blob
                self.fetched += 1
                self.scoreboard.record_ok(peer_id, reply.latency_s)
                if self.metrics is not None:
                    self.metrics.count_request(peer_id, kind, "ok")
                    self.metrics.observe_latency(peer_id, reply.latency_s)
                    self.metrics.set_score(peer_id, self.scoreboard.score(peer_id))
                return
            stale = True

        if stale:
            outcome = "stale"
        elif timed_out and reply.behavior not in ("drop", "timeout"):
            outcome = "timeout"  # honest reply that missed the deadline
        else:
            outcome = reply.behavior
        demoted = self.scoreboard.record_failure(peer_id, self.now, stale=stale)
        if self.metrics is not None:
            self.metrics.count_request(peer_id, kind, outcome)
            self.metrics.set_score(peer_id, self.scoreboard.score(peer_id))
            if demoted:
                self.metrics.count_demotion(peer_id)
        if attempt >= cfg.max_attempts:
            raise PeerNetworkError(
                f"gave up on {request.describe()} after {attempt} attempts "
                f"(last outcome: {outcome} from {peer_id})"
            )
        backoff = cfg.backoff_base_s * cfg.backoff_factor ** (attempt - 1)
        self.retries += 1
        if self.metrics is not None:
            self.metrics.retries.inc()
        heapq.heappush(
            pending, (self.now + backoff, self._next_seq(), request, attempt + 1)
        )
