"""Simulated peers serving state requests from a reference node.

A :class:`SimulatedPeer` wraps a fully-synced reference
:class:`~repro.sync.driver.FullSyncDriver` and answers
:class:`~repro.peers.messages.NodeRequest`\\ s by untraced peeks into
the reference database — the stand-in for a remote full node's state.

Every peer owns a :class:`~repro.faults.plan.PeerBehavior`-style profile
(:class:`PeerBehavior`) plus a private seeded RNG stream, so the same
``(seed, peer_id)`` always produces the same sequence of latencies,
drops, timeouts, and stale answers.  Fault-plan rules
(:attr:`~repro.faults.plan.FaultKind.PEER_DROP` /
:attr:`~repro.faults.plan.FaultKind.PEER_SLOW`) override the profile
draw for targeted, schedule-precise failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import BeamSyncError
from repro.faults.plan import FaultKind, FaultPlan, LatencyModel, seeded_stream
from repro.gethdb import schema
from repro.peers.messages import NodeRequest, PeerReply, RequestKind

if TYPE_CHECKING:
    from repro.sync.driver import FullSyncDriver


@dataclass(frozen=True)
class PeerBehavior:
    """A peer's steady-state service profile."""

    latency: LatencyModel = field(default_factory=LatencyModel)
    #: probability a request is silently dropped (no reply)
    drop_rate: float = 0.0
    #: probability the reply arrives after the scheduler deadline
    timeout_rate: float = 0.0
    #: probability the reply is corrupt (fails hash verification)
    stale_rate: float = 0.0


#: Named behavior profiles for CLI / CI peer construction.  "slow" uses
#: a scaled latency model (≈6× healthy); "dropping" loses ~1 in 6
#: requests; "flaky" mixes every failure mode at a low rate.
PEER_PROFILES: dict[str, PeerBehavior] = {
    "healthy": PeerBehavior(latency=LatencyModel(base_s=0.02, jitter_s=0.01)),
    "slow": PeerBehavior(latency=LatencyModel(base_s=0.02, jitter_s=0.01, scale=6.0)),
    "dropping": PeerBehavior(
        latency=LatencyModel(base_s=0.02, jitter_s=0.01), drop_rate=0.15
    ),
    "stale": PeerBehavior(
        latency=LatencyModel(base_s=0.02, jitter_s=0.01), stale_rate=0.2
    ),
    "flaky": PeerBehavior(
        latency=LatencyModel(base_s=0.03, jitter_s=0.02),
        drop_rate=0.05,
        timeout_rate=0.05,
        stale_rate=0.05,
    ),
}


def behavior_from_profile(name: str) -> PeerBehavior:
    try:
        return PEER_PROFILES[name]
    except KeyError:
        raise BeamSyncError(
            f"unknown peer profile {name!r}; choose from {sorted(PEER_PROFILES)}"
        ) from None


class SimulatedPeer:
    """One peer: a reference node plus a failure/latency profile."""

    def __init__(
        self,
        peer_id: str,
        node: "FullSyncDriver",
        behavior: Optional[PeerBehavior] = None,
        seed: int = 0,
    ) -> None:
        self.peer_id = peer_id
        self.node = node
        self.behavior = behavior if behavior is not None else PeerBehavior()
        self._rng = seeded_stream(seed, "peer", peer_id)
        self.served = 0

    # -- state lookup ---------------------------------------------------------

    def _lookup(self, request: NodeRequest) -> Optional[bytes]:
        if request.kind is RequestKind.ACCOUNT_NODE:
            key = schema.account_trie_node_key(request.path)
        elif request.kind is RequestKind.STORAGE_NODE:
            key = schema.storage_trie_node_key(request.owner, request.path)
        else:
            key = schema.code_key(request.code_hash)
        return self.node.db.peek(key)

    # -- service --------------------------------------------------------------

    def serve(
        self,
        request: NodeRequest,
        timeout_s: float,
        block: int = 0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> PeerReply:
        """Answer one request in virtual time.

        ``timeout_s`` is the scheduler's deadline, used to size
        timeout-mode latencies past it.  The reply's ``latency_s`` is
        the peer-side service time; the scheduler adds it to its
        virtual clock.
        """
        self.served += 1
        latency_model = self.behavior.latency

        # A fault-plan rule overrides the profile draw for this request.
        rule = fault_plan.on_peer_request(self.peer_id, block) if fault_plan else None
        if rule is not None and rule.kind is FaultKind.PEER_DROP:
            return PeerReply(blob=None, latency_s=timeout_s, behavior="drop")
        if rule is not None and rule.kind is FaultKind.PEER_SLOW:
            latency_model = latency_model.scaled(rule.slow_factor)

        draw = self._rng.random()
        latency = latency_model.sample(self._rng)
        if draw < self.behavior.drop_rate:
            return PeerReply(blob=None, latency_s=timeout_s, behavior="drop")
        draw -= self.behavior.drop_rate
        if draw < self.behavior.timeout_rate:
            return PeerReply(
                blob=None, latency_s=timeout_s * 1.5, behavior="timeout"
            )
        draw -= self.behavior.timeout_rate

        blob = self._lookup(request)
        if blob is None:
            # The reference node genuinely lacks this state (e.g. an
            # empty-state peer): an honest empty answer, delivered as a
            # verification failure so the scheduler tries elsewhere.
            return PeerReply(blob=None, latency_s=latency, behavior="missing")
        if draw < self.behavior.stale_rate:
            # Deterministically corrupted bytes: the model for a peer
            # answering from a wrong or outdated state.
            return PeerReply(
                blob=bytes([blob[0] ^ 0xFF]) + blob[1:],
                latency_s=latency,
                behavior="stale",
            )
        return PeerReply(blob=blob, latency_s=latency, behavior="ok")


def build_peer_network(
    node: "FullSyncDriver",
    profiles: list[str],
    seed: int = 0,
) -> list[SimulatedPeer]:
    """Construct peers over one shared reference node.

    ``profiles`` names one behavior per peer (see :data:`PEER_PROFILES`);
    peer ids are ``peer-0 .. peer-N`` suffixed with the profile name so
    metrics and reports read naturally.
    """
    peers = []
    for index, profile in enumerate(profiles):
        behavior = behavior_from_profile(profile)
        peers.append(
            SimulatedPeer(
                peer_id=f"peer-{index}-{profile}",
                node=node,
                behavior=behavior,
                seed=seed,
            )
        )
    return peers
