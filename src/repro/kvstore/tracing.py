"""Tracing KV store wrapper — the paper's capture point.

Wraps any :class:`~repro.kvstore.api.KVStore` and emits one
:class:`~repro.core.trace.TraceRecord` per operation that crosses the
interface.  Following the paper (§III-B), a put is recorded as UPDATE
when the key already exists in the underlying store and WRITE otherwise;
a scan is one SCAN record keyed by its start key.

The wrapper also exposes a ``block_height`` attribute that the sync
driver advances as it processes blocks, so every record carries the
height at which it was issued — this is what the correlation analyses
(Figures 4-7) and per-block reasoning rely on.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.core.trace import OpType, TraceRecord
from repro.kvstore.api import KVStore


class TraceCollector:
    """Accumulates trace records in memory, with optional spill callback.

    For large runs a ``sink`` callable (e.g. ``TraceWriter.append``) can
    be supplied; records are then forwarded instead of retained, keeping
    memory bounded.
    """

    def __init__(self, sink: Optional[Callable[[TraceRecord], None]] = None) -> None:
        self._records: List[TraceRecord] = []
        self._sink = sink
        self._count = 0

    @property
    def count(self) -> int:
        """Total records observed (retained or forwarded)."""
        return self._count

    @property
    def records(self) -> List[TraceRecord]:
        """Retained records (empty when a sink is configured)."""
        return self._records

    def emit(self, record: TraceRecord) -> None:
        self._count += 1
        if self._sink is not None:
            self._sink(record)
        else:
            self._records.append(record)

    def clear(self) -> None:
        self._records.clear()
        self._count = 0


class TracingKVStore(KVStore):
    """KV store decorator that records every operation at the interface."""

    def __init__(self, inner: KVStore, collector: Optional[TraceCollector] = None) -> None:
        self._inner = inner
        self.collector = collector if collector is not None else TraceCollector()
        #: Current block height; advanced by the sync driver.
        self.block_height = 0
        #: When False, operations pass through untraced (used for
        #: pre-population before the measured window, mirroring the
        #: paper's trace that only covers blocks 20.5M-21.5M while the
        #: store already holds state for blocks 0-20.5M).
        self.enabled = True

    @property
    def inner(self) -> KVStore:
        return self._inner

    def _emit(self, op: OpType, key: bytes, value_size: int) -> None:
        if self.enabled:
            self.collector.emit(
                TraceRecord(op=op, key=key, value_size=value_size, block=self.block_height)
            )

    def get(self, key: bytes) -> bytes:
        value = self._inner.get(key)
        self._emit(OpType.READ, key, len(value))
        return value

    def get_or_none(self, key: bytes) -> Optional[bytes]:
        value = self._inner.get_or_none(key)
        self._emit(OpType.READ, key, len(value) if value is not None else 0)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        op = OpType.UPDATE if self._inner.has(key) else OpType.WRITE
        self._inner.put(key, value)
        self._emit(op, key, len(value))

    def delete(self, key: bytes) -> None:
        self._inner.delete(key)
        self._emit(OpType.DELETE, key, 0)

    def has(self, key: bytes) -> bool:
        # Existence probes are not value reads; Geth's `Has` calls do not
        # appear as reads in the paper's traces, so they are not traced.
        return self._inner.has(key)

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        total = 0
        try:
            for key, value in self._inner.scan(start, end):
                total += len(value)
                yield key, value
        finally:
            # Emit even when the consumer stops early (bounded probes
            # close the generator before exhaustion) — one SCAN record
            # per range query, as the paper counts them.
            self._emit(OpType.SCAN, start, total)

    def __len__(self) -> int:
        return len(self._inner)

    def close(self) -> None:
        self._inner.close()
