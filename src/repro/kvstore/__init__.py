"""Key-value store substrate.

The paper instruments Geth at the KV-store interface (Pebble's API).
This package provides that seam in Python:

* :mod:`repro.kvstore.api` — the abstract store/batch/iterator protocol;
* :mod:`repro.kvstore.memdb` — a sorted in-memory store (the reference
  implementation the rest of the stack runs against);
* :mod:`repro.kvstore.lsm` — a leveled LSM-tree store simulator
  (memtable, WAL, SSTables, compaction, tombstones, block cache) with
  read/write-amplification accounting for the ablation benches;
* :mod:`repro.kvstore.hashlog` — an append-only log with a hash index
  (the paper's suggested structure for high-delete classes);
* :mod:`repro.kvstore.tracing` — the tracing wrapper that emits one
  :class:`~repro.core.trace.TraceRecord` per operation crossing the
  interface, classifying puts as WRITE vs UPDATE exactly as the paper
  does (by key pre-existence).
"""

from repro.kvstore.api import Batch, KVStore
from repro.kvstore.btree import BPlusTreeStore
from repro.kvstore.hashlog import HashLogStore
from repro.kvstore.lsm import LSMConfig, LSMStore
from repro.kvstore.memdb import MemoryKVStore
from repro.kvstore.tracing import TraceCollector, TracingKVStore

__all__ = [
    "KVStore",
    "Batch",
    "MemoryKVStore",
    "LSMStore",
    "LSMConfig",
    "BPlusTreeStore",
    "HashLogStore",
    "TracingKVStore",
    "TraceCollector",
]
