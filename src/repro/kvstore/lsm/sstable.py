"""Immutable sorted string tables.

An SSTable is a sorted, immutable run of entries (values or tombstones)
with a smallest/largest key, a Bloom filter over its keys, and byte-size
accounting.  Lookups bisect the in-memory entry list, standing in for
the index-block + data-block path of a real table while preserving the
costs the analyses care about.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Iterator, Optional

from repro.kvstore.lsm.memtable import TOMBSTONE, Entry

_table_ids = itertools.count(1)


class BloomFilter:
    """Small double-hashed Bloom filter over byte keys."""

    def __init__(self, expected: int, bits_per_key: int = 10) -> None:
        self._size = max(64, expected * bits_per_key)
        self._num_hashes = max(1, int(bits_per_key * 0.69))
        self._bits = bytearray((self._size + 7) // 8)

    def _positions(self, key: bytes) -> Iterator[int]:
        h1 = hash(key)
        h2 = hash(key[::-1] + b"\x00")
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._size

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def may_contain(self, key: bytes) -> bool:
        return all(self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key))


class SSTable:
    """Immutable sorted run with Bloom filter and size accounting."""

    def __init__(self, entries: list[tuple[bytes, Entry]]) -> None:
        """``entries`` must be sorted by key with no duplicates."""
        self.table_id = next(_table_ids)
        self._keys = [key for key, _ in entries]
        self._entries = [entry for _, entry in entries]
        self._bloom = BloomFilter(len(entries) or 1)
        data_bytes = 0
        tombstones = 0
        for key, entry in entries:
            self._bloom.add(key)
            data_bytes += len(key)
            if entry is TOMBSTONE:
                tombstones += 1
            else:
                data_bytes += len(entry)  # type: ignore[arg-type]
        self.data_bytes = data_bytes
        self.num_tombstones = tombstones

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def smallest(self) -> Optional[bytes]:
        return self._keys[0] if self._keys else None

    @property
    def largest(self) -> Optional[bytes]:
        return self._keys[-1] if self._keys else None

    def key_in_range(self, key: bytes) -> bool:
        if not self._keys:
            return False
        return self._keys[0] <= key <= self._keys[-1]

    def may_contain(self, key: bytes) -> bool:
        """Bloom + range pre-check; False means definitely absent."""
        return self.key_in_range(key) and self._bloom.may_contain(key)

    def get(self, key: bytes) -> Optional[Entry]:
        """Value bytes, TOMBSTONE, or None when absent from this table."""
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._entries[index]
        return None

    def entries(self) -> Iterator[tuple[bytes, Entry]]:
        return zip(self._keys, self._entries)

    def iter_range(
        self, start: bytes, end: Optional[bytes]
    ) -> Iterator[tuple[bytes, Entry]]:
        index = bisect.bisect_left(self._keys, start)
        while index < len(self._keys):
            key = self._keys[index]
            if end is not None and key >= end:
                return
            yield key, self._entries[index]
            index += 1

    def overlaps(self, smallest: bytes, largest: bytes) -> bool:
        """Whether this table's key range intersects [smallest, largest]."""
        if not self._keys:
            return False
        return not (self._keys[-1] < smallest or self._keys[0] > largest)


def merge_runs(
    runs: list[Iterator[tuple[bytes, Entry]]],
    drop_tombstones: bool,
) -> tuple[list[tuple[bytes, Entry]], int, int]:
    """K-way merge of sorted runs, newest run first.

    For duplicate keys the entry from the earliest run in ``runs`` wins
    (callers order runs newest-first).  Returns ``(entries,
    tombstones_dropped, stale_dropped)``; tombstones are removed from
    the output only when ``drop_tombstones`` (bottom-level compaction).
    """
    import heapq

    heap: list[tuple[bytes, int, Entry]] = []
    iters = [iter(run) for run in runs]
    for run_index, it in enumerate(iters):
        first = next(it, None)
        if first is not None:
            heapq.heappush(heap, (first[0], run_index, first[1]))

    merged: list[tuple[bytes, Entry]] = []
    tombstones_dropped = 0
    stale_dropped = 0
    current_key: Optional[bytes] = None
    while heap:
        key, run_index, entry = heapq.heappop(heap)
        nxt = next(iters[run_index], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt[0], run_index, nxt[1]))
        if key == current_key:
            stale_dropped += 1
            continue
        current_key = key
        if entry is TOMBSTONE and drop_tombstones:
            tombstones_dropped += 1
            continue
        merged.append((key, entry))
    return merged, tombstones_dropped, stale_dropped
