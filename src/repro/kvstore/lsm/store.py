"""The leveled LSM store.

Write path: every put/delete is appended to the WAL accounting and the
memtable; when the memtable exceeds ``memtable_bytes`` it flushes to a
new L0 table.  When L0 accumulates ``l0_compaction_trigger`` tables, or
a deeper level exceeds its byte budget, compaction merges runs into the
next level.  Tombstones survive until they reach the bottom-most
populated level — exactly the behaviour behind the paper's argument
that delete-heavy classes (TxLookup, BlockHeader) are a poor fit for
LSM storage.

Read path: memtable, then L0 tables newest-first, then one candidate
table per deeper level; Bloom filters short-circuit most probes.  An
LRU block cache fronts table lookups.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import KeyNotFoundError
from repro.kvstore.api import KVStore
from repro.kvstore.lsm.memtable import ENTRY_OVERHEAD, TOMBSTONE, Entry, MemTable
from repro.kvstore.lsm.sstable import SSTable, merge_runs
from repro.kvstore.metrics import LevelStats, StoreMetrics, bind_store_metrics


@dataclass(frozen=True)
class LSMConfig:
    """Tuning knobs for the LSM simulator (defaults are Pebble-like ratios)."""

    memtable_bytes: int = 256 * 1024
    l0_compaction_trigger: int = 4
    level_base_bytes: int = 1024 * 1024
    level_size_multiplier: int = 10
    max_levels: int = 7
    block_cache_entries: int = 4096


class _BlockCache:
    """LRU cache over (table_id, key) -> entry lookups."""

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._entries: OrderedDict[tuple[int, bytes], Entry] = OrderedDict()

    def get(self, table_id: int, key: bytes) -> Optional[Entry]:
        cache_key = (table_id, key)
        entry = self._entries.get(cache_key)
        if entry is not None:
            self._entries.move_to_end(cache_key)
        return entry

    def put(self, table_id: int, key: bytes, entry: Entry) -> None:
        if self._capacity <= 0:
            return
        cache_key = (table_id, key)
        self._entries[cache_key] = entry
        self._entries.move_to_end(cache_key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def drop_table(self, table_id: int) -> None:
        stale = [ck for ck in self._entries if ck[0] == table_id]
        for ck in stale:
            del self._entries[ck]


class LSMStore(KVStore):
    """Leveled LSM-tree KV store with full I/O accounting."""

    def __init__(self, config: Optional[LSMConfig] = None) -> None:
        self.config = config if config is not None else LSMConfig()
        self.metrics = StoreMetrics()
        bind_store_metrics(self.metrics, "lsm")
        self._memtable = MemTable()
        # levels[0] is L0 (newest table last, may overlap); deeper levels
        # hold non-overlapping tables sorted by smallest key.
        self._levels: list[list[SSTable]] = [[] for _ in range(self.config.max_levels)]
        self._cache = _BlockCache(self.config.block_cache_entries)
        self._live_keys = 0
        self._key_live: dict[bytes, bool] = {}

    # -- write path ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self.metrics.user_puts += 1
        self.metrics.user_bytes_written += len(key) + len(value)
        self.metrics.wal_bytes_written += len(key) + len(value) + ENTRY_OVERHEAD
        if not self._key_live.get(key, False):
            self._live_keys += 1
            self._key_live[key] = True
        self._memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        self.metrics.user_deletes += 1
        self.metrics.wal_bytes_written += len(key) + ENTRY_OVERHEAD
        self.metrics.tombstones_written += 1
        if self._key_live.get(key, False):
            self._live_keys -= 1
            self._key_live[key] = False
        self._memtable.delete(key)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._memtable.approx_bytes >= self.config.memtable_bytes:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Flush the memtable into a new L0 table (no-op when empty)."""
        if self._memtable.is_empty():
            return
        table = SSTable(self._memtable.sorted_entries())
        self.metrics.flush_bytes_written += table.data_bytes
        self._levels[0].append(table)
        self._memtable = MemTable()
        self._maybe_compact()

    # -- compaction ---------------------------------------------------------

    def _level_budget(self, level: int) -> int:
        return self.config.level_base_bytes * (
            self.config.level_size_multiplier ** max(0, level - 1)
        )

    def _level_bytes(self, level: int) -> int:
        return sum(table.data_bytes for table in self._levels[level])

    def _bottom_populated_level(self) -> int:
        for level in range(self.config.max_levels - 1, 0, -1):
            if self._levels[level]:
                return level
        return 0

    def _maybe_compact(self) -> None:
        # Loop until no level violates its trigger; each pass does one
        # compaction so the accounting matches one background job at a time.
        while True:
            if len(self._levels[0]) >= self.config.l0_compaction_trigger:
                self._compact(0)
                continue
            for level in range(1, self.config.max_levels - 1):
                if self._level_bytes(level) > self._level_budget(level):
                    self._compact(level)
                    break
            else:
                return

    def _compact(self, level: int) -> None:
        """Merge all of ``level``'s tables with overlapping next-level tables."""
        source_tables = self._levels[level]
        if not source_tables:
            return
        target_level = level + 1
        smallest = min(t.smallest for t in source_tables if t.smallest is not None)
        largest = max(t.largest for t in source_tables if t.largest is not None)
        overlapping = [
            t for t in self._levels[target_level] if t.overlaps(smallest, largest)
        ]
        keep = [t for t in self._levels[target_level] if not t.overlaps(smallest, largest)]

        # Newest-first: L0 tables newest-last on append, so reverse; the
        # source level is always newer than the target level.
        runs = [t.entries() for t in reversed(source_tables)]
        runs.extend(t.entries() for t in overlapping)

        drop_tombstones = target_level >= self._bottom_populated_level()
        merged, tombstones_dropped, stale_dropped = merge_runs(runs, drop_tombstones)

        read_bytes = sum(t.data_bytes for t in source_tables) + sum(
            t.data_bytes for t in overlapping
        )
        self.metrics.compaction_bytes_read += read_bytes
        self.metrics.tombstones_dropped += tombstones_dropped
        self.metrics.stale_entries_dropped += stale_dropped
        self.metrics.compactions += 1

        for table in source_tables + overlapping:
            self._cache.drop_table(table.table_id)

        new_tables: list[SSTable] = []
        if merged:
            new_table = SSTable(merged)
            self.metrics.compaction_bytes_written += new_table.data_bytes
            new_tables.append(new_table)

        self._levels[level] = []
        self._levels[target_level] = sorted(
            keep + new_tables, key=lambda t: t.smallest or b""
        )

    # -- read path ----------------------------------------------------------

    def _lookup(self, key: bytes) -> Optional[Entry]:
        entry = self._memtable.get(key)
        if entry is not None:
            return entry
        for table in reversed(self._levels[0]):
            found = self._probe_table(table, key)
            if found is not None:
                return found
        for level in range(1, self.config.max_levels):
            for table in self._levels[level]:
                if table.smallest is None or not table.key_in_range(key):
                    continue
                found = self._probe_table(table, key)
                if found is not None:
                    return found
                break  # non-overlapping: at most one candidate per level
        return None

    def _probe_table(self, table: SSTable, key: bytes) -> Optional[Entry]:
        if not table.may_contain(key):
            self.metrics.bloom_filter_negatives += 1
            return None
        cached = self._cache.get(table.table_id, key)
        if cached is not None:
            self.metrics.block_cache_hits += 1
            return cached
        self.metrics.block_cache_misses += 1
        self.metrics.sstable_lookups += 1
        entry = table.get(key)
        if entry is not None:
            self._cache.put(table.table_id, key, entry)
        return entry

    def get(self, key: bytes) -> bytes:
        self.metrics.user_gets += 1
        entry = self._lookup(key)
        if entry is None or entry is TOMBSTONE:
            raise KeyNotFoundError(key)
        value: bytes = entry  # type: ignore[assignment]
        self.metrics.user_bytes_read += len(value)
        return value

    def has(self, key: bytes) -> bool:
        entry = self._lookup(key)
        return entry is not None and entry is not TOMBSTONE

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        self.metrics.user_scans += 1
        runs: list[Iterator[tuple[bytes, Entry]]] = [
            self._memtable.iter_range(start, end)
        ]
        runs.extend(t.iter_range(start, end) for t in reversed(self._levels[0]))
        for level in range(1, self.config.max_levels):
            for table in self._levels[level]:
                runs.append(table.iter_range(start, end))
        merged, _, _ = merge_runs(runs, drop_tombstones=True)
        for key, entry in merged:
            yield key, entry  # type: ignore[misc]

    def __len__(self) -> int:
        return self._live_keys

    # -- introspection ------------------------------------------------------

    def level_stats(self) -> list[LevelStats]:
        """Occupancy of each populated level."""
        stats = []
        for level, tables in enumerate(self._levels):
            if not tables and level > 0:
                continue
            stats.append(
                LevelStats(
                    level=level,
                    num_tables=len(tables),
                    data_bytes=sum(t.data_bytes for t in tables),
                    num_entries=sum(len(t) for t in tables),
                    num_tombstones=sum(t.num_tombstones for t in tables),
                )
            )
        return stats

    def live_tombstones(self) -> int:
        """Tombstones currently resident across all tables + memtable."""
        count = sum(t.num_tombstones for level in self._levels for t in level)
        count += sum(
            1 for _, entry in self._memtable.sorted_entries() if entry is TOMBSTONE
        )
        return count
