"""LSM memtable: the in-memory mutable run.

A dict plus deferred sorting stands in for the skiplist a production
LSM would use; entries store either value bytes or the TOMBSTONE
sentinel for deletes.  Size accounting (keys + values + per-entry
overhead) drives flush scheduling in the store.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

#: Sentinel marking a deleted key inside LSM structures.  A dedicated
#: object (not None) so that values of b"" remain representable.
TOMBSTONE = object()

Entry = Union[bytes, object]

#: Bytes charged per entry beyond key/value payload (index + metadata),
#: roughly matching Pebble's skiplist node overhead.
ENTRY_OVERHEAD = 24


class MemTable:
    """Mutable sorted run absorbing writes before flush."""

    def __init__(self) -> None:
        self._data: dict[bytes, Entry] = {}
        self._approx_bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        self._account_replace(key, len(value))
        self._data[key] = value

    def delete(self, key: bytes) -> None:
        """Insert a tombstone for ``key`` (even if never written here)."""
        self._account_replace(key, 0)
        self._data[key] = TOMBSTONE

    def _account_replace(self, key: bytes, new_value_len: int) -> None:
        old = self._data.get(key)
        if old is None:
            self._approx_bytes += ENTRY_OVERHEAD + len(key) + new_value_len
        else:
            old_len = 0 if old is TOMBSTONE else len(old)  # type: ignore[arg-type]
            self._approx_bytes += new_value_len - old_len

    def get(self, key: bytes) -> Optional[Entry]:
        """Return value bytes, TOMBSTONE, or None when the key is unknown here."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    @property
    def approx_bytes(self) -> int:
        """Approximate memory footprint used for flush scheduling."""
        return self._approx_bytes

    def is_empty(self) -> bool:
        return not self._data

    def sorted_entries(self) -> list[tuple[bytes, Entry]]:
        """All entries in key order (tombstones included)."""
        return sorted(self._data.items())

    def iter_range(
        self, start: bytes, end: Optional[bytes]
    ) -> Iterator[tuple[bytes, Entry]]:
        """Entries with ``start <= key < end`` in key order."""
        for key, entry in self.sorted_entries():
            if key < start:
                continue
            if end is not None and key >= end:
                return
            yield key, entry
