"""Leveled LSM-tree KV store simulator (Pebble-like).

Structure mirrors a leveled LSM: a write-ahead log and an in-memory
memtable absorb puts/deletes; full memtables flush to overlapping L0
tables; deeper levels hold non-overlapping sorted runs with
exponentially growing size budgets; background compaction merges runs
downward, rewriting live data and eventually dropping tombstones at the
bottom level.

Everything is held in memory (the analyses need I/O *accounting*, not
actual disk), but every byte that a real LSM would read or write is
counted in :class:`~repro.kvstore.metrics.StoreMetrics` — that is what
the paper's ablation arguments (tombstone cost, compaction overhead,
scan-support tax) are about.
"""

from repro.kvstore.lsm.memtable import MemTable, TOMBSTONE
from repro.kvstore.lsm.sstable import SSTable
from repro.kvstore.lsm.store import LSMConfig, LSMStore

__all__ = ["LSMStore", "LSMConfig", "MemTable", "SSTable", "TOMBSTONE"]
