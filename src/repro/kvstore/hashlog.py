"""Append-only log with a hash index.

This is the storage shape the paper recommends (§V) for classes with
heavy deletes and no scans (e.g. TxLookup): values are appended to an
unsorted log, a hash index maps key -> log offset, deletes are in-place
index removals (no tombstones), and garbage collection rewrites a log
segment only when its dead ratio crosses a threshold.

Scans are supported for interface completeness but cost a full sort —
mirroring the real trade-off that motivates routing scan-free classes
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import KeyNotFoundError
from repro.kvstore.api import KVStore
from repro.kvstore.metrics import StoreMetrics, bind_store_metrics

#: Per-record log framing overhead (lengths + checksum), in bytes.
RECORD_OVERHEAD = 12


@dataclass
class _Segment:
    """One log segment with live/dead accounting."""

    segment_id: int
    records: dict[bytes, bytes]
    dead_bytes: int = 0
    total_bytes: int = 0


class HashLogStore(KVStore):
    """Hash-indexed append-only log store with threshold-based GC."""

    def __init__(
        self,
        segment_bytes: int = 256 * 1024,
        gc_dead_ratio: float = 0.5,
    ) -> None:
        self.metrics = StoreMetrics()
        bind_store_metrics(self.metrics, "hashlog")
        self._segment_bytes = segment_bytes
        self._gc_dead_ratio = gc_dead_ratio
        self._segments: list[_Segment] = [_Segment(0, {})]
        # key -> segment_id holding the live copy
        self._index: dict[bytes, int] = {}
        self._by_id: dict[int, _Segment] = {0: self._segments[0]}
        self._next_segment_id = 1

    def _active(self) -> _Segment:
        return self._segments[-1]

    def _roll_segment(self) -> None:
        segment = _Segment(self._next_segment_id, {})
        self._next_segment_id += 1
        self._segments.append(segment)
        self._by_id[segment.segment_id] = segment

    def put(self, key: bytes, value: bytes) -> None:
        self.metrics.user_puts += 1
        record_bytes = len(key) + len(value) + RECORD_OVERHEAD
        self.metrics.user_bytes_written += len(key) + len(value)
        self.metrics.wal_bytes_written += record_bytes  # the log *is* the WAL

        old_segment_id = self._index.get(key)
        if old_segment_id is not None:
            self._kill_record(old_segment_id, key)

        active = self._active()
        if active.total_bytes + record_bytes > self._segment_bytes and active.records:
            self._roll_segment()
            active = self._active()
        active.records[key] = value
        active.total_bytes += record_bytes
        self._index[key] = active.segment_id

    def _kill_record(self, segment_id: int, key: bytes) -> None:
        segment = self._by_id[segment_id]
        value = segment.records.pop(key, None)
        if value is not None:
            segment.dead_bytes += len(key) + len(value) + RECORD_OVERHEAD
            self._maybe_gc(segment)

    def delete(self, key: bytes) -> None:
        self.metrics.user_deletes += 1
        segment_id = self._index.pop(key, None)
        if segment_id is not None:
            self._kill_record(segment_id, key)

    def _maybe_gc(self, segment: _Segment) -> None:
        if segment is self._active() or segment.total_bytes == 0:
            return
        if segment.dead_bytes / segment.total_bytes < self._gc_dead_ratio:
            return
        # Rewrite live records into the active segment; reclaim the rest.
        self.metrics.gc_bytes_read += segment.total_bytes
        live = list(segment.records.items())
        segment.records = {}
        segment.total_bytes = 0
        segment.dead_bytes = 0
        self._segments.remove(segment)
        del self._by_id[segment.segment_id]
        for key, value in live:
            record_bytes = len(key) + len(value) + RECORD_OVERHEAD
            self.metrics.gc_bytes_written += record_bytes
            active = self._active()
            if (
                active.total_bytes + record_bytes > self._segment_bytes
                and active.records
            ):
                self._roll_segment()
                active = self._active()
            active.records[key] = value
            active.total_bytes += record_bytes
            self._index[key] = active.segment_id

    def get(self, key: bytes) -> bytes:
        self.metrics.user_gets += 1
        segment_id = self._index.get(key)
        if segment_id is None:
            raise KeyNotFoundError(key)
        value = self._by_id[segment_id].records[key]
        self.metrics.user_bytes_read += len(value)
        return value

    def has(self, key: bytes) -> bool:
        return key in self._index

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        self.metrics.user_scans += 1
        keys = sorted(k for k in self._index if k >= start and (end is None or k < end))
        for key in keys:
            yield key, self._by_id[self._index[key]].records[key]

    def __len__(self) -> int:
        return len(self._index)

    @property
    def log_bytes(self) -> int:
        """Total bytes currently held across all segments (live + dead)."""
        return sum(segment.total_bytes for segment in self._segments)

    @property
    def dead_bytes(self) -> int:
        """Dead bytes awaiting GC across all segments."""
        return sum(segment.dead_bytes for segment in self._segments)
