"""B+-tree KV store.

The paper's hybrid-design recommendation names two ordered structures
for the scan classes: "an LSM-tree or B+-tree index" (§V).  This is the
B+-tree: sorted leaves linked for range scans, internal nodes holding
separator keys, in-place updates (no tombstones, no compaction), with
the write cost showing up as *page writes* instead.

The I/O model charges one page write per dirtied node per operation and
one page read per node descended, so the ablations can contrast its
cost profile against the LSM (write-amplifying, scan-cheap) and the
hash log (delete-cheap, scan-hostile) on equal terms.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from repro.errors import KeyNotFoundError
from repro.kvstore.api import KVStore
from repro.kvstore.metrics import StoreMetrics, bind_store_metrics

#: modeled page size for I/O accounting
PAGE_BYTES = 4096


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.values: list[bytes] = []
        self.next: Optional[_Leaf] = None


class _Internal:
    __slots__ = ("separators", "children")

    def __init__(self) -> None:
        # children[i] covers keys < separators[i]; the last child covers
        # the rest.  len(children) == len(separators) + 1.
        self.separators: list[bytes] = []
        self.children: list = []


class BPlusTreeStore(KVStore):
    """In-memory B+-tree with page-level I/O accounting."""

    def __init__(self, order: int = 32) -> None:
        """``order``: max keys per node before it splits (>= 4)."""
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._root = _Leaf()
        self._size = 0
        self.metrics = StoreMetrics()
        bind_store_metrics(self.metrics, "btree")
        self._height = 1

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def _descend(self, key: bytes) -> tuple[list, _Leaf]:
        """Return (path of internal nodes with child indexes, leaf)."""
        path = []
        node = self._root
        while isinstance(node, _Internal):
            self.metrics.sstable_lookups += 1  # page read
            index = bisect.bisect_right(node.separators, key)
            path.append((node, index))
            node = node.children[index]
        self.metrics.sstable_lookups += 1  # leaf page read
        return path, node

    def get(self, key: bytes) -> bytes:
        self.metrics.user_gets += 1
        _, leaf = self._descend(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            value = leaf.values[index]
            self.metrics.user_bytes_read += len(value)
            return value
        raise KeyNotFoundError(key)

    def has(self, key: bytes) -> bool:
        _, leaf = self._descend(key)
        index = bisect.bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self.metrics.user_puts += 1
        self.metrics.user_bytes_written += len(key) + len(value)
        path, leaf = self._descend(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value  # in-place update
            self.metrics.flush_bytes_written += PAGE_BYTES
            return
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._size += 1
        self.metrics.flush_bytes_written += PAGE_BYTES
        if len(leaf.keys) > self.order:
            self._split_leaf(path, leaf)

    def _split_leaf(self, path: list, leaf: _Leaf) -> None:
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        leaf.next = right
        self.metrics.flush_bytes_written += 2 * PAGE_BYTES  # both halves
        self._insert_separator(path, right.keys[0], right)

    def _insert_separator(self, path: list, separator: bytes, right_child) -> None:
        if not path:
            new_root = _Internal()
            new_root.separators = [separator]
            new_root.children = [self._root, right_child]
            self._root = new_root
            self._height += 1
            self.metrics.flush_bytes_written += PAGE_BYTES
            return
        parent, index = path[-1]
        parent.separators.insert(index, separator)
        parent.children.insert(index + 1, right_child)
        self.metrics.flush_bytes_written += PAGE_BYTES
        if len(parent.separators) > self.order:
            self._split_internal(path[:-1], parent)

    def _split_internal(self, path: list, node: _Internal) -> None:
        middle = len(node.separators) // 2
        promoted = node.separators[middle]
        right = _Internal()
        right.separators = node.separators[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.separators = node.separators[:middle]
        node.children = node.children[: middle + 1]
        self.metrics.flush_bytes_written += 2 * PAGE_BYTES
        self._insert_separator(path, promoted, right)

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------

    def delete(self, key: bytes) -> None:
        """In-place removal; underfull leaves are tolerated (lazy).

        B+-trees delete without tombstones — the contrast with the LSM
        the ablations measure.  Like many production trees (and unlike
        textbook ones), underflow is handled lazily: pages are allowed
        to run sparse and are only reclaimed when empty.
        """
        self.metrics.user_deletes += 1
        path, leaf = self._descend(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return  # blind delete of an absent key: no-op
        leaf.keys.pop(index)
        leaf.values.pop(index)
        self._size -= 1
        self.metrics.flush_bytes_written += PAGE_BYTES
        if not leaf.keys and path:
            self._drop_empty_leaf(path, leaf)

    def _drop_empty_leaf(self, path: list, leaf: _Leaf) -> None:
        parent, index = path[-1]
        parent.children.pop(index)
        if index < len(parent.separators):
            parent.separators.pop(index)
        elif parent.separators:
            parent.separators.pop()
        # Fix the leaf chain: predecessor (if any) skips the empty leaf.
        previous = self._leftmost_leaf()
        if previous is not leaf:
            while previous is not None and previous.next is not leaf:
                previous = previous.next
            if previous is not None:
                previous.next = leaf.next
        self.metrics.flush_bytes_written += PAGE_BYTES
        # Collapse single-child internals up the path.
        for depth in range(len(path) - 1, -1, -1):
            node, _ = path[depth]
            if isinstance(node, _Internal) and len(node.children) == 1:
                child = node.children[0]
                if depth == 0:
                    self._root = child
                    self._height -= 1
                else:
                    grandparent, gp_index = path[depth - 1]
                    grandparent.children[gp_index] = child
                self.metrics.flush_bytes_written += PAGE_BYTES

    # ------------------------------------------------------------------
    # scan
    # ------------------------------------------------------------------

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        self.metrics.user_scans += 1
        _, leaf = self._descend(start)
        index = bisect.bisect_left(leaf.keys, start)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if end is not None and key >= end:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0
            if leaf is not None:
                self.metrics.sstable_lookups += 1  # next page read

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height in levels (1 = a single leaf)."""
        return self._height
