"""Abstract KV store interface.

The interface mirrors the subset of Pebble's API that Geth uses:
point gets/puts/deletes, range scans, and atomic write batches.
All concrete stores in this package implement :class:`KVStore`.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

from repro.errors import KeyNotFoundError


class KVStore(abc.ABC):
    """A byte-keyed, byte-valued store with ordered scans and batches."""

    @abc.abstractmethod
    def get(self, key: bytes) -> bytes:
        """Return the value for ``key``; raise :class:`KeyNotFoundError` if absent."""

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key`` with ``value``."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove ``key``.  Deleting an absent key is a no-op (Pebble semantics)."""

    @abc.abstractmethod
    def has(self, key: bytes) -> bool:
        """Return whether ``key`` is present."""

    @abc.abstractmethod
    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs with ``start <= key < end`` in key order.

        ``end=None`` means "to the end of the keyspace".
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of live keys in the store."""

    def get_or_none(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or ``None`` if absent."""
        try:
            return self.get(key)
        except KeyNotFoundError:
            return None

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all pairs whose key starts with ``prefix``."""
        return self.scan(prefix, prefix_upper_bound(prefix))

    def write_batch(self) -> "Batch":
        """Create an atomic write batch against this store."""
        return Batch(self)

    def close(self) -> None:
        """Release resources.  Default: no-op."""

    def keys(self) -> Iterator[bytes]:
        """Iterate all live keys in order."""
        for key, _ in self.scan(b""):
            yield key


def prefix_upper_bound(prefix: bytes) -> Optional[bytes]:
    """Smallest key greater than every key with the given prefix.

    Returns ``None`` when the prefix is all ``0xff`` bytes (no upper
    bound exists); an empty prefix also yields ``None`` (full range).
    """
    trimmed = prefix.rstrip(b"\xff")
    if not trimmed:
        return None
    return trimmed[:-1] + bytes([trimmed[-1] + 1])


class Batch:
    """An atomic group of puts/deletes, applied on :meth:`commit`.

    Mirrors Geth's use of Pebble batches: mutations accumulate in memory
    and are applied in insertion order on commit.  Later operations on
    the same key within one batch override earlier ones, matching
    write-batch semantics of LSM stores.
    """

    def __init__(self, store: KVStore) -> None:
        self._store = store
        # key -> value bytes for put, None for delete; dict preserves
        # insertion order and de-duplicates by key (last wins).
        self._ops: dict[bytes, Optional[bytes]] = {}

    def put(self, key: bytes, value: bytes) -> None:
        self._ops[key] = value

    def delete(self, key: bytes) -> None:
        self._ops[key] = None

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size of the pending batch."""
        return sum(len(k) + (len(v) if v is not None else 0) for k, v in self._ops.items())

    def commit(self) -> None:
        """Apply all pending operations to the store, then reset."""
        for key, value in self._ops.items():
            if value is None:
                self._store.delete(key)
            else:
                self._store.put(key, value)
        self._ops.clear()

    def commit_prefix(self, count: int) -> int:
        """Apply only the first ``count`` staged ops, then reset.

        Models a torn write batch: a crash mid-commit leaves a prefix of
        the batch durable (insertion order) and loses the rest.  Returns
        the number of operations applied.  Only the fault-injection
        layer calls this; normal commits are atomic.
        """
        applied = 0
        for key, value in self._ops.items():
            if applied >= count:
                break
            if value is None:
                self._store.delete(key)
            else:
                self._store.put(key, value)
            applied += 1
        self._ops.clear()
        return applied

    def reset(self) -> None:
        """Discard all pending operations."""
        self._ops.clear()
