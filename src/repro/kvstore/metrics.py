"""I/O accounting for KV store implementations.

The ablation benches (paper §V) compare storage designs by the I/O they
generate: write amplification from compaction, tombstone overhead from
deletes, and read amplification from multi-level lookups.  Every store
that participates in an ablation carries a :class:`StoreMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids an import cycle
    from repro.obs.registry import MetricsRegistry, Sample


@dataclass
class StoreMetrics:
    """Cumulative I/O counters for a store instance."""

    user_bytes_written: int = 0
    user_bytes_read: int = 0
    user_puts: int = 0
    user_gets: int = 0
    user_deletes: int = 0
    user_scans: int = 0

    wal_bytes_written: int = 0
    flush_bytes_written: int = 0
    compaction_bytes_read: int = 0
    compaction_bytes_written: int = 0
    compactions: int = 0

    tombstones_written: int = 0
    tombstones_dropped: int = 0
    stale_entries_dropped: int = 0

    sstable_lookups: int = 0
    bloom_filter_negatives: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0

    gc_bytes_read: int = 0
    gc_bytes_written: int = 0

    def total_bytes_written(self) -> int:
        """All physical bytes written (WAL + flush + compaction + GC)."""
        return (
            self.wal_bytes_written
            + self.flush_bytes_written
            + self.compaction_bytes_written
            + self.gc_bytes_written
        )

    @property
    def write_amplification(self) -> float:
        """Physical bytes written per user byte written."""
        if self.user_bytes_written == 0:
            return 0.0
        return self.total_bytes_written() / self.user_bytes_written

    @property
    def read_amplification(self) -> float:
        """SSTable lookups per user get (1.0 means one table probed)."""
        if self.user_gets == 0:
            return 0.0
        return self.sstable_lookups / self.user_gets

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view for reports."""
        result: dict[str, float] = {}
        for name in self.__dataclass_fields__:
            result[name] = getattr(self, name)
        result["total_bytes_written"] = self.total_bytes_written()
        result["write_amplification"] = self.write_amplification
        result["read_amplification"] = self.read_amplification
        return result


def store_metric_samples(
    metrics: StoreMetrics, backend: str
) -> Iterator["Sample"]:
    """Render a live :class:`StoreMetrics` as registry counter samples.

    Every dataclass field becomes ``repro_store_<field>_total`` labeled
    by backend, so multiple instances of the same backend sum into one
    series at snapshot time.  The amplification ratios are derived, not
    summed — consumers recompute them from the summed raw counters.
    """
    from repro.obs.registry import COUNTER, Sample

    labels = (("backend", backend),)
    for name in metrics.__dataclass_fields__:
        yield Sample(
            name=f"repro_store_{name}_total",
            kind=COUNTER,
            labels=labels,
            value=float(getattr(metrics, name)),
            help=f"StoreMetrics.{name} summed over live store instances",
        )


def bind_store_metrics(
    metrics: StoreMetrics, backend: str, registry: Optional["MetricsRegistry"] = None
) -> None:
    """Publish ``metrics`` into a registry as labeled counters.

    The registry keeps only a weak reference and reads the counters at
    snapshot time, so the stores' hot-path accounting stays plain
    attribute increments and :meth:`StoreMetrics.snapshot` is untouched.
    ``registry=None`` binds to the process-wide registry.
    """
    if registry is None:
        from repro.obs import get_registry

        registry = get_registry()
    registry.register_object_collector(
        metrics, lambda m, backend=backend: store_metric_samples(m, backend)
    )


@dataclass
class LevelStats:
    """Per-level occupancy for LSM introspection."""

    level: int
    num_tables: int = 0
    data_bytes: int = 0
    num_entries: int = 0
    num_tombstones: int = 0
    extra: dict[str, int] = field(default_factory=dict)
