"""Sorted in-memory KV store.

The reference implementation behind the rest of the stack.  Keys are
kept in a dict for O(1) point access plus a lazily maintained sorted key
list for range scans: scans are rare in Ethereum workloads (the paper's
Finding 4), so the sort cost is amortized to near zero in practice.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from repro.errors import KeyNotFoundError, StoreClosedError
from repro.kvstore.api import KVStore
from repro.kvstore.metrics import StoreMetrics, bind_store_metrics


class MemoryKVStore(KVStore):
    """Dict-backed store with ordered scans."""

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}
        self._sorted_keys: list[bytes] = []
        self._sorted_dirty = False
        self._closed = False
        self._approx_bytes = 0
        self.metrics = StoreMetrics()
        bind_store_metrics(self.metrics, "memdb")

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    def get(self, key: bytes) -> bytes:
        self._check_open()
        metrics = self.metrics
        metrics.user_gets += 1
        try:
            value = self._data[key]
        except KeyError:
            raise KeyNotFoundError(key) from None
        metrics.user_bytes_read += len(value)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        old = self._data.get(key)
        if old is None:
            self._sorted_dirty = True
            self._approx_bytes += len(key) + len(value)
        else:
            self._approx_bytes += len(value) - len(old)
        self._data[key] = value
        metrics = self.metrics
        metrics.user_puts += 1
        metrics.user_bytes_written += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        self._check_open()
        self.metrics.user_deletes += 1
        old = self._data.pop(key, None)
        if old is not None:
            self._sorted_dirty = True
            self._approx_bytes -= len(key) + len(old)

    def has(self, key: bytes) -> bool:
        self._check_open()
        return key in self._data

    def _ensure_sorted(self) -> None:
        if self._sorted_dirty or len(self._sorted_keys) != len(self._data):
            self._sorted_keys = sorted(self._data)
            self._sorted_dirty = False

    def scan(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        self.metrics.user_scans += 1
        self._ensure_sorted()
        keys = self._sorted_keys
        index = bisect.bisect_left(keys, start)
        while index < len(keys):
            key = keys[index]
            if end is not None and key >= end:
                return
            # The key may have been deleted since the snapshot sort;
            # skip stale entries rather than resorting mid-scan.
            value = self._data.get(key)
            if value is not None:
                yield key, value
            index += 1

    def __len__(self) -> int:
        return len(self._data)

    def close(self) -> None:
        self._closed = True

    @property
    def approx_bytes(self) -> int:
        """Total key+value bytes currently stored (growth accounting)."""
        return self._approx_bytes

    def raw_dict(self) -> dict[bytes, bytes]:
        """Direct view of the backing dict (for analysis snapshots)."""
        return self._data
