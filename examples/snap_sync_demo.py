#!/usr/bin/env python3
"""Snap vs full synchronization: two very different KV workloads.

The paper measures *full* synchronization (execute every block); new
mainnet nodes default to *snap* synchronization (download the state by
hashed ranges from peers, heal the trie, then follow the head).  This
example runs both against the same chain and contrasts their KV traffic
profiles — snap sync is a bulk-write workload with a thin read tail,
full sync is the read-heavy transaction-processing workload the paper
characterizes.

Usage::

    python examples/snap_sync_demo.py [--blocks N]
"""

from __future__ import annotations

import argparse
import time

from repro.core.opdist import OpDistAnalyzer
from repro.core.report import render_op_table
from repro.core.trace import OpType
from repro.sync import FullSyncDriver, SnapSyncDriver, SyncConfig
from repro.sync.driver import DBConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=80)
    args = parser.parse_args()

    workload = WorkloadConfig(
        seed=13, initial_eoa_accounts=2000, initial_contracts=300, txs_per_block=16
    )

    print("Running the serving peer (full sync from genesis)...")
    start = time.time()
    peer = FullSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=20),
        WorkloadGenerator(workload),
        name="peer",
    )
    peer_result = peer.run(args.blocks)
    print(
        f"  peer at head {peer_result.head_number} "
        f"({len(peer_result.records):,} traced ops) in {time.time() - start:.1f}s"
    )

    print("Snap-syncing a fresh node from the peer...")
    start = time.time()
    snap = SnapSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=0),
        workload,
    )
    snap_result = snap.sync_from_peer(peer, tail_blocks=16)
    print(
        f"  downloaded {snap_result.accounts_downloaded:,} accounts, "
        f"{snap_result.slots_downloaded:,} slots, "
        f"{snap_result.codes_downloaded} bytecodes in {time.time() - start:.1f}s; "
        f"state root verified: {snap_result.state_root_matches}"
    )

    full_ops = OpDistAnalyzer(track_keys=False).consume(peer_result.records)
    snap_ops = OpDistAnalyzer(track_keys=False).consume(snap_result.records)

    print()
    print(render_op_table(snap_ops, "Snap sync (download + heal + tail)"))
    print()

    def mix(analyzer):
        total = analyzer.total_ops
        reads = analyzer.total_reads()
        puts = analyzer.total_puts()
        return total, 100 * reads / total, 100 * puts / total

    full_total, full_reads, full_puts = mix(full_ops)
    snap_total, snap_reads, snap_puts = mix(snap_ops)
    print(f"{'mode':<12} {'KV ops':>10} {'reads %':>9} {'puts %':>8}")
    print(f"{'full sync':<12} {full_total:>10,} {full_reads:>9.1f} {full_puts:>8.1f}")
    print(f"{'snap sync':<12} {snap_total:>10,} {snap_reads:>9.1f} {snap_puts:>8.1f}")
    print()
    print(
        "Snap sync inverts the profile: bulk state writes during the\n"
        "ranged download and trie heal, with execution reads appearing\n"
        "only once it switches to full sync at the head — which is why\n"
        "the paper characterizes full synchronization."
    )


if __name__ == "__main__":
    main()
