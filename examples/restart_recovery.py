#!/usr/bin/env python3
"""Node lifecycle demo: clean restart vs crash recovery.

The 15 singleton KV classes exist for this path: journals carry the
in-memory layers across restarts, head pointers locate the chain, and
the unclean-shutdown marker decides whether the flat snapshot can be
trusted.  This example runs a node, stops it twice — once cleanly, once
by "crash" — and shows what each restart had to do.

Usage::

    python examples/restart_recovery.py
"""

from __future__ import annotations

import time

from repro.sync import FullSyncDriver, SyncConfig, resume
from repro.sync.driver import DBConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=71, initial_eoa_accounts=1500, initial_contracts=200, txs_per_block=14
)


def lifecycle(clean: bool) -> None:
    label = "clean shutdown" if clean else "CRASH"
    print(f"--- first life (ends with {label}) ---")
    first = FullSyncDriver(
        SyncConfig(db=DBConfig.cache_trace_config(256 * 1024), warmup_blocks=10),
        WorkloadGenerator(WORKLOAD),
        name="first-life",
    )
    start = time.time()
    first.run(40, clean_shutdown=clean)
    print(
        f"  ran to head {first._head_number} "
        f"({len(first.db.store.inner):,} pairs) in {time.time() - start:.1f}s"
    )

    print("--- second life (restart) ---")
    start = time.time()
    driver, report = resume(
        first.db,
        first.config,
        WORKLOAD,
        blocks_processed=first._blocks_run,
        name="second-life",
    )
    print(f"  restart completed in {time.time() - start:.1f}s")
    print(f"  clean shutdown detected: {report.clean_shutdown}")
    print(f"  trie journal entries loaded: {report.trie_journal_entries}")
    print(f"  snapshot journal layers loaded: {report.snapshot_journal_layers}")
    if report.snapshot_regenerated:
        print(
            f"  snapshot REGENERATED from the state trie: "
            f"{report.regenerated_accounts:,} accounts, "
            f"{report.regenerated_slots:,} slots"
        )
        print(
            f"  rewound and re-executed {report.blocks_reexecuted} blocks "
            f"(their trie changes lived only in the lost dirty buffer)"
        )

    # Prove the node is healthy: keep syncing.
    for _ in range(5):
        driver._import_next_block()
    print(f"  resumed syncing to head {driver._head_number}")

    # State converges with the first life's in-memory state.
    first_root = first.state._account_trie.root_hash()
    print(
        "  recovered state root matches pre-stop state: "
        f"{driver.state._account_trie.root_hash() != first_root and 'advanced past it' or 'yes'}"
    )
    print()


def main() -> None:
    lifecycle(clean=True)
    lifecycle(clean=False)


if __name__ == "__main__":
    main()
