#!/usr/bin/env python3
"""Hybrid KV storage ablation: the paper's §V design vs a single LSM store.

Generates a BareTrace analog, then replays its logical operation stream
into (a) one leveled LSM store (the Geth/Pebble baseline) and (b) the
paper's class-routed hybrid store, printing the I/O accounting side by
side: tombstones, compaction traffic, write amplification, and the
fraction of world-state pairs that ever earned a per-key index entry.

Usage::

    python examples/hybrid_ablation.py [--blocks N]
"""

from __future__ import annotations

import argparse
import time

from repro import WorkloadConfig
from repro.core.trace import OpType
from repro.hybrid import HybridKVStore, Route
from repro.kvstore.lsm import LSMConfig, LSMStore
from repro.sync.driver import FullSyncDriver, SyncConfig, DBConfig
from repro.workload.generator import WorkloadGenerator

LSM_CONFIG = LSMConfig(
    memtable_bytes=64 * 1024,
    l0_compaction_trigger=4,
    level_base_bytes=256 * 1024,
)


def replay(store, records):
    """Drive a store with the logical operations of a trace."""
    for record in records:
        op = record.op
        if op is OpType.WRITE or op is OpType.UPDATE:
            store.put(record.key, b"\xab" * record.value_size)
        elif op is OpType.DELETE:
            store.delete(record.key)
        elif op is OpType.READ:
            store.get_or_none(record.key)
        else:
            for index, _ in enumerate(store.scan(record.key)):
                if index >= 64:
                    break
    return store


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=120)
    args = parser.parse_args()

    workload = WorkloadConfig(
        seed=99, initial_eoa_accounts=3000, initial_contracts=400, txs_per_block=20
    )
    print("Generating a BareTrace analog...")
    start = time.time()
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=40),
        WorkloadGenerator(workload),
        name="BareTrace",
    )
    result = driver.run(args.blocks)
    records = result.records
    print(f"  {len(records):,} KV operations in {time.time() - start:.1f}s")

    print("Replaying into the LSM baseline...")
    lsm = replay(LSMStore(LSM_CONFIG), records)
    print("Replaying into the hybrid store...")
    hybrid = replay(HybridKVStore(lsm_config=LSM_CONFIG), records)

    lsm_metrics = lsm.metrics
    hybrid_metrics = hybrid.combined_metrics()
    print()
    print(f"{'metric':<28} {'LSM baseline':>14} {'Hybrid (§V)':>14}")
    print("-" * 58)
    rows = (
        ("user puts", lsm_metrics.user_puts, hybrid_metrics.user_puts),
        ("user deletes", lsm_metrics.user_deletes, hybrid_metrics.user_deletes),
        (
            "tombstones written",
            lsm_metrics.tombstones_written,
            hybrid_metrics.tombstones_written,
        ),
        (
            "compaction bytes written",
            lsm_metrics.compaction_bytes_written,
            hybrid_metrics.compaction_bytes_written,
        ),
        ("GC bytes written", lsm_metrics.gc_bytes_written, hybrid_metrics.gc_bytes_written),
        (
            "total bytes written",
            lsm_metrics.total_bytes_written(),
            hybrid_metrics.total_bytes_written(),
        ),
    )
    for name, lsm_value, hybrid_value in rows:
        print(f"{name:<28} {lsm_value:>14,} {hybrid_value:>14,}")
    print(
        f"{'write amplification':<28} {lsm_metrics.write_amplification:>14.2f} "
        f"{hybrid_metrics.write_amplification:>14.2f}"
    )
    print()
    print(
        f"world-state pairs promoted to per-key index: "
        f"{hybrid.log_then_hash.promoted_fraction:.1%} "
        f"(the rest were written but never read — Finding 3)"
    )
    per_route = hybrid.per_route_metrics()
    for route in Route:
        metrics = per_route[route]
        print(
            f"  route {route.value:<14} puts={metrics.user_puts:<8} "
            f"deletes={metrics.user_deletes:<7} "
            f"bytes_written={metrics.total_bytes_written():,}"
        )


if __name__ == "__main__":
    main()
