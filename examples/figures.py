#!/usr/bin/env python3
"""Render the paper's Figures 2-7 as terminal (ASCII) charts.

Each figure is drawn from the same analysis data the benchmark harness
asserts on — log-log scatter plots for the size and frequency
distributions, multi-series charts for the distance-based correlation
curves.

Usage::

    python examples/figures.py [--blocks N]
"""

from __future__ import annotations

import argparse
import time

from repro import TraceAnalysis, WorkloadConfig, run_trace_pair
from repro.core.asciiplot import multi_series, scatter
from repro.core.classes import KVClass
from repro.core.correlation import format_class_pair
from repro.core.trace import OpType

DISTANCES = (0, 1, 4, 16, 64, 256, 1024)


def fig2(cache: TraceAnalysis) -> None:
    for kv_class in (
        KVClass.TRIE_NODE_ACCOUNT,
        KVClass.TRIE_NODE_STORAGE,
        KVClass.SNAPSHOT_ACCOUNT,
        KVClass.SNAPSHOT_STORAGE,
    ):
        points = cache.sizes.size_distribution(kv_class)
        print()
        print(
            scatter(
                points,
                title=f"Figure 2 — {kv_class.display_name} KV size distribution",
                xlabel="KV size (bytes)",
                ylabel="count",
            )
        )


def fig3(cache: TraceAnalysis) -> None:
    for kv_class in (KVClass.TRIE_NODE_STORAGE, KVClass.SNAPSHOT_STORAGE):
        points = cache.opdist.activity(kv_class).frequency_distribution(OpType.READ)
        print()
        print(
            scatter(
                points,
                title=f"Figure 3 — {kv_class.display_name} read frequency distribution",
                xlabel="reads per key",
                ylabel="#keys",
            )
        )


def _correlation_chart(analysis: TraceAnalysis, op: OpType, figure: str) -> None:
    results = analysis.correlation(op)
    pairs = [p for p, _ in results[0].top_pairs(2, cross_class=True)]
    pairs += [p for p, _ in results[0].top_pairs(2, cross_class=False)]
    series = {}
    for pair in pairs:
        label = format_class_pair(pair)
        series[label] = [
            (d, max(1, results[d].class_pair_counts.get(pair, 0))) for d in DISTANCES
        ]
    print()
    print(
        multi_series(
            series,
            title=f"{figure} — {analysis.name} correlated {op.name.lower()}s vs distance",
            xlabel="distance",
        )
    )


def fig5_7(analysis: TraceAnalysis, op: OpType, figure: str) -> None:
    results = analysis.correlation(op)
    top = results[0].top_pairs(1, cross_class=False)
    if not top:
        return
    pair = top[0][0]
    histogram = results[0].frequency_histograms.get(pair, {})
    points = sorted(histogram.items())
    print()
    print(
        scatter(
            points,
            title=(
                f"{figure} — {analysis.name} {format_class_pair(pair)} "
                f"correlated-{op.name.lower()} frequencies at distance 0"
            ),
            xlabel="pair frequency",
            ylabel="#pairs",
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=120)
    args = parser.parse_args()

    workload = WorkloadConfig(
        seed=2024, initial_eoa_accounts=4000, initial_contracts=500, txs_per_block=20
    )
    print("Synchronizing both capture modes...")
    start = time.time()
    cache_result, bare_result = run_trace_pair(
        workload, num_blocks=args.blocks, warmup_blocks=50, cache_bytes=256 * 1024
    )
    print(f"  done in {time.time() - start:.1f}s")
    cache = TraceAnalysis(
        "CacheTrace",
        cache_result.records,
        cache_result.store_snapshot,
        correlation_distances=DISTANCES,
    )
    bare = TraceAnalysis(
        "BareTrace",
        bare_result.records,
        bare_result.store_snapshot,
        correlation_distances=DISTANCES,
    )

    fig2(cache)
    fig3(cache)
    _correlation_chart(cache, OpType.READ, "Figure 4(a,b)")
    _correlation_chart(bare, OpType.READ, "Figure 4(c,d)")
    fig5_7(bare, OpType.READ, "Figure 5")
    _correlation_chart(cache, OpType.UPDATE, "Figure 6(a,b)")
    _correlation_chart(bare, OpType.UPDATE, "Figure 6(c,d)")
    fig5_7(bare, OpType.UPDATE, "Figure 7")


if __name__ == "__main__":
    main()
