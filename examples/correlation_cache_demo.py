#!/usr/bin/env python3
"""Correlation-aware caching demo: the paper's §V cache design.

Generates a BareTrace analog (the read stream a cache in front of the
store would see), trains a correlation table on the first 30% of reads,
then replays the trace against four cache policies at equal entry
budgets and reports hit rates:

* plain LRU (write-path admission) — Geth's baseline behaviour;
* LRU without write-path admission — the paper's Finding 3+6 refinement;
* segmented per-class LRU — Geth's actual multi-cache layout;
* correlation-aware (prefetch + group eviction) — the paper's §V design.

Usage::

    python examples/correlation_cache_demo.py [--capacity N]
"""

from __future__ import annotations

import argparse
import time

from repro import WorkloadConfig
from repro.cachesim import (
    CacheSimulator,
    CorrelationAwareCache,
    CorrelationTable,
    LRUPolicy,
    NoWriteAdmissionPolicy,
    SegmentedLRUPolicy,
)
from repro.core.classes import WORLD_STATE_CLASSES, KVClass, classify_key
from repro.core.trace import OpType
from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.workload.generator import WorkloadGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity", type=int, default=2048, help="cache entries")
    parser.add_argument("--blocks", type=int, default=120)
    args = parser.parse_args()

    workload = WorkloadConfig(
        seed=31, initial_eoa_accounts=3000, initial_contracts=400, txs_per_block=20
    )
    print("Generating a BareTrace analog (cache-less read stream)...")
    start = time.time()
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=40),
        WorkloadGenerator(workload),
        name="BareTrace",
    )
    records = driver.run(args.blocks).records
    print(f"  {len(records):,} KV operations in {time.time() - start:.1f}s")

    classes = set(WORLD_STATE_CLASSES) | {KVClass.CODE}
    cutoff = int(len(records) * 0.3)
    train_reads = [
        record.key
        for record in records[:cutoff]
        if record.op is OpType.READ and classify_key(record.key) in classes
    ]
    table = CorrelationTable(window=4, max_partners=3)
    table.learn(train_reads)
    print(
        f"Trained correlation table on {len(train_reads):,} reads "
        f"({table.num_correlated_pairs:,} correlated key pairs)."
    )

    policies = [
        LRUPolicy(args.capacity),
        NoWriteAdmissionPolicy(args.capacity),
        SegmentedLRUPolicy(args.capacity),
        CorrelationAwareCache(args.capacity, table),
    ]
    print()
    print(f"{'policy':<26} {'hit rate':>9} {'store reads':>12} {'prefetches':>11}")
    print("-" * 62)
    for policy in policies:
        report = CacheSimulator(policy).replay(records, classes=classes)
        print(
            f"{policy.name:<26} {report.hit_rate:>9.3f} "
            f"{report.store_reads:>12,} {report.prefetches:>11,}"
        )
    print()
    print(
        "The correlation-aware policy converts correlated follow-up reads\n"
        "into hits via prefetch (Findings 8-9); filtering write-path\n"
        "admission keeps never-read pairs out of the cache (Findings 3+6)."
    )


if __name__ == "__main__":
    main()
