#!/usr/bin/env python3
"""Scenario comparison: how the storage shape shifts with the traffic mix.

The paper's introduction motivates the study with the application
classes blockchains serve (payments, smart contracts, DeFi).  This
example runs the same analysis over three workload scenarios — a
payments-dominated epoch, the calibrated mainnet blend, and a
DeFi-heavy epoch — and compares the class-level op shares, showing how
the storage bottleneck migrates from the account trie to contract
storage as call traffic grows.

Usage::

    python examples/scenario_comparison.py [--blocks N]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import replace

from repro.core.classes import KVClass
from repro.core.opdist import OpDistAnalyzer
from repro.core.trace import OpType
from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.workload import WorkloadGenerator, scenario

CLASSES = (
    KVClass.TRIE_NODE_ACCOUNT,
    KVClass.TRIE_NODE_STORAGE,
    KVClass.SNAPSHOT_ACCOUNT,
    KVClass.SNAPSHOT_STORAGE,
    KVClass.CODE,
    KVClass.TX_LOOKUP,
)


def run_scenario(name: str, blocks: int) -> OpDistAnalyzer:
    config = scenario(
        name,
        seed=11,
        initial_eoa_accounts=3000,
        initial_contracts=400,
        txs_per_block=20,
    )
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.cache_trace_config(256 * 1024), warmup_blocks=40),
        WorkloadGenerator(config),
        name=name,
    )
    result = driver.run(blocks)
    return OpDistAnalyzer(track_keys=False).consume(result.records)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=100)
    args = parser.parse_args()

    analyses = {}
    for name in ("payments", "mainnet", "defi"):
        start = time.time()
        print(f"Running {name!r} scenario...")
        analyses[name] = run_scenario(name, args.blocks)
        print(f"  {analyses[name].total_ops:,} KV ops in {time.time() - start:.1f}s")

    print()
    header = f"{'class':<20}" + "".join(f"{name:>12}" for name in analyses)
    print("Share of all KV operations (%):")
    print(header)
    print("-" * len(header))
    for kv_class in CLASSES:
        cells = "".join(
            f"{analysis.class_share(kv_class):>12.2f}"
            for analysis in analyses.values()
        )
        print(f"{kv_class.display_name:<20}{cells}")

    print()
    print("Storage-vs-account balance (TrieNodeStorage / TrieNodeAccount ops):")
    for name, analysis in analyses.items():
        storage = analysis.distribution(KVClass.TRIE_NODE_STORAGE).total
        account = analysis.distribution(KVClass.TRIE_NODE_ACCOUNT).total
        ratio = storage / account if account else float("inf")
        print(f"  {name:<10} {ratio:.2f}x")

    print()
    print("Slot-clear pressure (TrieNodeStorage delete % — Finding 5's driver):")
    for name, analysis in analyses.items():
        dist = analysis.distribution(KVClass.TRIE_NODE_STORAGE)
        print(f"  {name:<10} {dist.pct(OpType.DELETE):.2f}%")


if __name__ == "__main__":
    main()
