#!/usr/bin/env python3
"""Trace tooling demo: persist, reload, and slice traces.

Shows the trace I/O surface a downstream user works with: collect a
trace from a sync run, write it to disk (binary and text formats),
stream it back, and compute per-block and per-class slices without
holding everything in memory.

Usage::

    python examples/trace_tools.py [--outdir DIR]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from collections import Counter
from pathlib import Path

from repro import WorkloadConfig
from repro.core.classes import classify_key
from repro.core.trace import (
    OpType,
    read_trace,
    write_text_trace,
    write_trace,
)
from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.workload.generator import WorkloadGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", type=Path, default=None)
    args = parser.parse_args()
    outdir = args.outdir if args.outdir is not None else Path(tempfile.mkdtemp())
    outdir.mkdir(parents=True, exist_ok=True)

    workload = WorkloadConfig(
        seed=5, initial_eoa_accounts=1000, initial_contracts=150, txs_per_block=12
    )
    print("Collecting a small CacheTrace analog...")
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.cache_trace_config(128 * 1024), warmup_blocks=20),
        WorkloadGenerator(workload),
        name="CacheTrace",
    )
    records = driver.run(60).records
    print(f"  {len(records):,} records collected")

    binary_path = outdir / "cache_trace.bin"
    text_path = outdir / "cache_trace.txt"
    start = time.time()
    write_trace(binary_path, records)
    write_text_trace(text_path, records[:1000])  # text sample
    print(
        f"Wrote {binary_path} ({binary_path.stat().st_size:,} bytes) and a "
        f"1,000-line text sample in {time.time() - start:.2f}s"
    )

    # Stream the binary trace back and slice it without materializing.
    ops_per_block: Counter = Counter()
    reads_per_class: Counter = Counter()
    for record in read_trace(binary_path):
        ops_per_block[record.block] += 1
        if record.op is OpType.READ:
            reads_per_class[classify_key(record.key)] += 1

    busiest = ops_per_block.most_common(3)
    print()
    print("Busiest blocks (ops):")
    for block, count in busiest:
        print(f"  block {block}: {count} KV operations")
    print("Top read classes:")
    for kv_class, count in reads_per_class.most_common(5):
        print(f"  {kv_class.display_name:<20} {count:,} reads")

    print()
    print(f"Trace files left in {outdir}")


if __name__ == "__main__":
    main()
