#!/usr/bin/env python3
"""Quickstart: run a small full-sync trace pair and check the 11 findings.

Runs the same synthetic workload through the Geth storage stack twice —
once with caching + snapshot acceleration (the CacheTrace analog), once
without (BareTrace) — then evaluates the paper's 11 findings against
the two traces and prints the result.

Takes ~20 seconds.  Usage::

    python examples/quickstart.py
"""

from repro import TraceAnalysis, WorkloadConfig, evaluate_findings, run_trace_pair


def main() -> None:
    workload = WorkloadConfig(
        seed=7,
        initial_eoa_accounts=2000,
        initial_contracts=300,
        txs_per_block=16,
    )
    print("Running full sync in both capture modes (this takes a few seconds)...")
    cache_result, bare_result = run_trace_pair(
        workload, num_blocks=100, warmup_blocks=50, cache_bytes=128 * 1024
    )
    print(
        f"CacheTrace: {len(cache_result.records):,} KV ops, "
        f"{cache_result.total_store_pairs:,} pairs in store"
    )
    print(
        f"BareTrace:  {len(bare_result.records):,} KV ops, "
        f"{bare_result.total_store_pairs:,} pairs in store"
    )

    cache = TraceAnalysis(
        "CacheTrace", cache_result.records, cache_result.store_snapshot
    )
    bare = TraceAnalysis("BareTrace", bare_result.records, bare_result.store_snapshot)

    report = evaluate_findings(cache, bare)
    print()
    print(report.render())
    print()
    passed = sum(1 for finding in report if finding.passed)
    print(f"{passed}/11 findings reproduced.")


if __name__ == "__main__":
    main()
