#!/usr/bin/env python3
"""Full analysis pipeline: every table and figure from one trace pair.

Reproduces the complete analysis of the paper over a synthetic trace
pair — Table I (class inventory), Figure 2 (size distributions),
Tables II/III (operation distributions), Table IV (read ratios),
Figure 3 (per-key frequency distributions), Figures 4-7 (read/update
correlations) and the 11-findings summary — printing each in the
paper's row/series structure.

Usage::

    python examples/full_pipeline.py [--blocks N] [--warmup N] [--accounts N]
"""

from __future__ import annotations

import argparse
import time

from repro import TraceAnalysis, WorkloadConfig, evaluate_findings, run_trace_pair
from repro.core.classes import KVClass
from repro.core.report import (
    render_correlation_distance_series,
    render_correlation_frequency,
    render_frequency_distribution,
    render_op_table,
    render_read_ratio_table,
    render_size_distribution,
    render_table1,
)
from repro.core.trace import OpType

WORLD_STATE_PANELS = (
    KVClass.TRIE_NODE_ACCOUNT,
    KVClass.TRIE_NODE_STORAGE,
    KVClass.SNAPSHOT_ACCOUNT,
    KVClass.SNAPSHOT_STORAGE,
)


def banner(text: str) -> None:
    print()
    print("=" * 78)
    print(text)
    print("=" * 78)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=150, help="measured blocks")
    parser.add_argument("--warmup", type=int, default=60, help="untraced warmup blocks")
    parser.add_argument("--accounts", type=int, default=6000, help="initial EOAs")
    parser.add_argument("--contracts", type=int, default=700, help="initial contracts")
    args = parser.parse_args()

    workload = WorkloadConfig(
        seed=2024,
        initial_eoa_accounts=args.accounts,
        initial_contracts=args.contracts,
        txs_per_block=24,
    )

    start = time.time()
    print("Synchronizing both capture modes...")
    cache_result, bare_result = run_trace_pair(
        workload,
        num_blocks=args.blocks,
        warmup_blocks=args.warmup,
        cache_bytes=256 * 1024,
    )
    print(f"  done in {time.time() - start:.1f}s")

    distances = (0, 1, 4, 16, 64, 256, 1024)
    cache = TraceAnalysis(
        "CacheTrace",
        cache_result.records,
        cache_result.store_snapshot,
        correlation_distances=distances,
    )
    bare = TraceAnalysis(
        "BareTrace",
        bare_result.records,
        bare_result.store_snapshot,
        correlation_distances=distances,
    )

    banner("Table I — class inventory (store after CacheTrace)")
    print(render_table1(cache.sizes))

    banner("Figure 2 — KV size distributions")
    for kv_class in WORLD_STATE_PANELS:
        print(render_size_distribution(cache.sizes, kv_class, max_points=6))

    banner("Table II — operation distribution (CacheTrace)")
    print(render_op_table(cache.opdist, "Table II analog"))

    banner("Table III — operation distribution (BareTrace)")
    print(render_op_table(bare.opdist, "Table III analog"))

    banner("Table IV — read ratios")
    print(render_read_ratio_table(bare, cache, WORLD_STATE_PANELS))

    banner("Figure 3 — per-key read frequency distributions (CacheTrace)")
    for kv_class in WORLD_STATE_PANELS:
        print(render_frequency_distribution(cache.opdist, kv_class, OpType.READ, 6))

    banner("Figure 4 — read correlations vs distance")
    for analysis in (cache, bare):
        results = analysis.correlation(OpType.READ)
        pairs = [p for p, _ in results[0].top_pairs(3, cross_class=True)]
        pairs += [p for p, _ in results[0].top_pairs(3, cross_class=False)]
        print(
            render_correlation_distance_series(
                results, pairs, f"{analysis.name}: top cross + intra class pairs"
            )
        )

    banner("Figure 5 — correlated-read frequency distributions")
    for analysis in (cache, bare):
        results = analysis.correlation(OpType.READ)
        pairs = [p for p, _ in results[0].top_pairs(3)]
        print(
            render_correlation_frequency(
                results, pairs, [0, 1024], f"{analysis.name}", max_points=4
            )
        )

    banner("Figure 6 — update correlations vs distance")
    for analysis in (cache, bare):
        results = analysis.correlation(OpType.UPDATE)
        pairs = [p for p, _ in results[0].top_pairs(3, cross_class=True)]
        pairs += [p for p, _ in results[0].top_pairs(3, cross_class=False)]
        print(
            render_correlation_distance_series(
                results, pairs, f"{analysis.name}: top cross + intra class pairs"
            )
        )

    banner("Figure 7 — intra-class correlated-update frequencies")
    for analysis in (cache, bare):
        results = analysis.correlation(OpType.UPDATE)
        pairs = [p for p, _ in results[0].top_pairs(2, cross_class=False)]
        print(
            render_correlation_frequency(
                results, pairs, [0, 1024], f"{analysis.name}", max_points=4
            )
        )

    banner("Findings 1-11")
    print(evaluate_findings(cache, bare).render())


if __name__ == "__main__":
    main()
