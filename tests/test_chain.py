"""Chain substrate tests: accounts, blooms, transactions, blocks, genesis."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.chain import (
    Account,
    Block,
    BlockBody,
    Bloom,
    GenesisConfig,
    Header,
    Log,
    Receipt,
    Transaction,
    make_genesis,
)
from repro.chain.account import EMPTY_CODE_HASH, EMPTY_STORAGE_ROOT
from repro.chain.transactions import block_bloom, encode_receipts


class TestAccount:
    def test_full_roundtrip(self):
        account = Account(
            nonce=7,
            balance=10**18,
            storage_root=b"\x11" * 32,
            code_hash=b"\x22" * 32,
        )
        assert Account.decode(account.encode()) == account

    def test_default_is_eoa(self):
        account = Account()
        assert not account.is_contract
        assert account.code_hash == EMPTY_CODE_HASH
        assert account.storage_root == EMPTY_STORAGE_ROOT

    def test_slim_roundtrip_empty_fields(self):
        account = Account(nonce=1, balance=5)
        slim = account.encode_slim()
        assert Account.decode_slim(slim) == account
        # Slim form must be smaller than the full form for EOAs.
        assert len(slim) < len(account.encode())

    def test_slim_roundtrip_contract(self):
        account = Account(
            nonce=1, balance=0, storage_root=b"\x01" * 32, code_hash=b"\x02" * 32
        )
        assert Account.decode_slim(account.encode_slim()) == account

    def test_slim_size_matches_paper_scale(self):
        # SnapshotAccount values average ~16 bytes in Table I.
        slim = Account(nonce=3, balance=10**17).encode_slim()
        assert len(slim) < 20

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=2**200),
    )
    def test_roundtrip_property(self, nonce, balance):
        account = Account(nonce=nonce, balance=balance)
        assert Account.decode(account.encode()) == account
        assert Account.decode_slim(account.encode_slim()) == account


class TestBloom:
    def test_added_element_found(self):
        bloom = Bloom()
        bloom.add(b"hello")
        assert bloom.may_contain(b"hello")

    def test_empty_bloom_contains_nothing(self):
        assert not Bloom().may_contain(b"anything")

    def test_merge_unions(self):
        a, b = Bloom(), Bloom()
        a.add(b"x")
        b.add(b"y")
        a.merge(b)
        assert a.may_contain(b"x") and a.may_contain(b"y")

    def test_serialized_size(self):
        assert len(Bloom().to_bytes()) == 256

    def test_roundtrip(self):
        bloom = Bloom()
        bloom.add(b"addr")
        assert Bloom(bloom.to_bytes()) == bloom

    def test_bit_count_three_per_element(self):
        bloom = Bloom()
        bloom.add(b"only")
        assert 1 <= bloom.bit_count() <= 3

    @given(st.lists(st.binary(min_size=1, max_size=32), max_size=20))
    def test_no_false_negatives(self, elements):
        bloom = Bloom()
        for element in elements:
            bloom.add(element)
        for element in elements:
            assert bloom.may_contain(element)


class TestTransactions:
    def _tx(self, **kwargs):
        defaults = dict(
            nonce=1, sender=b"\xaa" * 20, to=b"\xbb" * 20, value=100, gas_limit=21000
        )
        defaults.update(kwargs)
        return Transaction(**defaults)

    def test_hash_is_stable(self):
        assert self._tx().hash == self._tx().hash

    def test_hash_differs_by_nonce(self):
        assert self._tx(nonce=1).hash != self._tx(nonce=2).hash

    def test_creation_flag(self):
        assert self._tx(to=None).is_creation
        assert not self._tx().is_creation

    def test_encoded_size_realistic(self):
        # A simple transfer encodes to roughly mainnet size (~110 bytes).
        size = len(self._tx().encode())
        assert 90 <= size <= 200

    def test_receipt_bloom_covers_logs(self):
        log = Log(address=b"\xcc" * 20, topics=[b"\x01" * 32], data=b"1234")
        receipt = Receipt(status=1, cumulative_gas_used=21000, logs=[log])
        bloom = receipt.bloom()
        assert bloom.may_contain(b"\xcc" * 20)
        assert bloom.may_contain(b"\x01" * 32)

    def test_block_bloom_merges_receipts(self):
        r1 = Receipt(1, 100, [Log(b"\x01" * 20)])
        r2 = Receipt(1, 200, [Log(b"\x02" * 20)])
        bloom = block_bloom([r1, r2])
        assert bloom.may_contain(b"\x01" * 20)
        assert bloom.may_contain(b"\x02" * 20)

    def test_encode_receipts_grows_with_logs(self):
        small = encode_receipts([Receipt(1, 100)])
        big = encode_receipts(
            [Receipt(1, 100, [Log(b"\x01" * 20, [b"\x02" * 32], b"x" * 100)])] * 5
        )
        assert len(big) > len(small)


class TestBlocks:
    def _header(self, number=1):
        return Header(
            number=number,
            parent_hash=b"\x01" * 32,
            state_root=b"\x02" * 32,
            timestamp=1_700_000_000,
        )

    def test_header_hash_stable_and_distinct(self):
        assert self._header().hash == self._header().hash
        assert self._header(1).hash != self._header(2).hash

    def test_header_encoded_size_realistic(self):
        # Mainnet headers are ~550-650 bytes RLP (bloom dominates).
        size = len(self._header().encode())
        assert 300 <= size <= 800

    def test_body_encoding_includes_transactions(self):
        tx = Transaction(1, b"\xaa" * 20, b"\xbb" * 20, 5, 21000)
        body = BlockBody(transactions=[tx, tx])
        assert len(body.encode()) > 2 * len(tx.encode())

    def test_block_accessors(self):
        block = Block(header=self._header(9), body=BlockBody())
        assert block.number == 9
        assert block.hash == block.header.hash
        assert block.transactions == []


class TestGenesis:
    def test_make_genesis(self):
        config = GenesisConfig()
        block = make_genesis(config, state_root=b"\x07" * 32)
        assert block.number == 0
        assert block.header.parent_hash == b"\x00" * 32
        assert block.header.state_root == b"\x07" * 32

    def test_config_json_size_matches_table1(self):
        assert len(GenesisConfig().config_json()) == 603

    def test_genesis_blob_size_matches_table1(self):
        config = GenesisConfig()
        blob = config.genesis_state_blob(b"\x01" * 32)
        assert len(blob) == 710_909

    def test_genesis_blob_deterministic(self):
        config = GenesisConfig()
        assert config.genesis_state_blob(b"\x01" * 32) == config.genesis_state_blob(
            b"\x01" * 32
        )
