"""Peer-network unit tests.

Covers the simulated peer layer in isolation — seeded behavior draws,
the scoreboard's demotion/readmission mechanics, and the virtual-clock
request scheduler — without spinning up a full sync driver.  The
end-to-end beam-sync paths live in ``tests/test_beamsync.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import BeamSyncError, PeerNetworkError
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultRule,
    LatencyModel,
    seeded_stream,
)
from repro.gethdb import schema
from repro.peers import (
    PEER_PROFILES,
    NodeRequest,
    PeerBehavior,
    PeerScoreboard,
    RequestKind,
    RequestScheduler,
    SchedulerConfig,
    SimulatedPeer,
    behavior_from_profile,
)
from repro.trie.trie import node_hash


class _FakeDB:
    """Minimal stand-in for GethDatabase.peek over a dict."""

    def __init__(self, mapping):
        self.mapping = mapping

    def peek(self, key):
        return self.mapping.get(key)


class _FakeNode:
    def __init__(self, mapping):
        self.db = _FakeDB(mapping)


def _account_request(path=(1, 2), blob=b"fake-account-node"):
    return (
        NodeRequest(RequestKind.ACCOUNT_NODE, node_hash(blob), path=path),
        {schema.account_trie_node_key(path): blob},
    )


def _peer(mapping, behavior=None, peer_id="p0", seed=0):
    return SimulatedPeer(peer_id, _FakeNode(mapping), behavior, seed=seed)


# ---------------------------------------------------------------------------
# seeded streams / latency models
# ---------------------------------------------------------------------------


class TestSeededStream:
    def test_same_labels_same_sequence(self):
        a = [seeded_stream(7, "peer", "x").random() for _ in range(3)]
        b = [seeded_stream(7, "peer", "x").random() for _ in range(3)]
        assert a == b

    def test_distinct_labels_diverge(self):
        assert seeded_stream(7, "peer", "x").random() != seeded_stream(
            7, "peer", "y"
        ).random()
        assert seeded_stream(7, "peer", "x").random() != seeded_stream(
            8, "peer", "x"
        ).random()

    def test_latency_sample_bounds(self):
        model = LatencyModel(base_s=0.02, jitter_s=0.01)
        rng = seeded_stream(1, "lat")
        for _ in range(100):
            sample = model.sample(rng)
            assert 0.02 <= sample < 0.03

    def test_scaled_multiplies(self):
        model = LatencyModel(base_s=0.02, jitter_s=0.0)
        assert model.scaled(6.0).sample(seeded_stream(0)) == pytest.approx(0.12)


# ---------------------------------------------------------------------------
# simulated peers
# ---------------------------------------------------------------------------


class TestSimulatedPeer:
    def test_healthy_reply_verifies(self):
        request, mapping = _account_request()
        peer = _peer(mapping)
        reply = peer.serve(request, timeout_s=0.25)
        assert reply.behavior == "ok"
        assert node_hash(reply.blob) == request.expected_hash
        assert reply.latency_s > 0

    def test_drop_profile_loses_the_request(self):
        request, mapping = _account_request()
        peer = _peer(mapping, PeerBehavior(drop_rate=1.0))
        reply = peer.serve(request, timeout_s=0.25)
        assert reply.behavior == "drop"
        assert reply.blob is None
        assert reply.latency_s == 0.25

    def test_stale_profile_fails_verification(self):
        request, mapping = _account_request()
        peer = _peer(mapping, PeerBehavior(stale_rate=1.0))
        reply = peer.serve(request, timeout_s=0.25)
        assert reply.behavior == "stale"
        assert node_hash(reply.blob) != request.expected_hash

    def test_missing_state_is_an_honest_miss(self):
        request, _ = _account_request()
        peer = _peer({})  # empty-state peer
        reply = peer.serve(request, timeout_s=0.25)
        assert reply.behavior == "missing"
        assert reply.blob is None

    def test_same_seed_same_reply_sequence(self):
        request, mapping = _account_request()
        behavior = PEER_PROFILES["flaky"]

        def sequence():
            peer = _peer(mapping, behavior, seed=9)
            return [
                (r.behavior, r.latency_s)
                for r in (peer.serve(request, 0.25) for _ in range(20))
            ]

        replies = sequence()
        assert replies == sequence()
        assert {behavior for behavior, _ in replies} & {"drop", "timeout", "stale"}

    def test_fault_rule_overrides_profile(self):
        request, mapping = _account_request()
        plan = FaultPlan(
            [FaultRule(FaultKind.PEER_DROP, peer="p0", at_count=1)], seed=3
        )
        peer = _peer(mapping)  # healthy profile
        dropped = peer.serve(request, 0.25, fault_plan=plan)
        assert dropped.behavior == "drop"
        # Rule is one-shot: the next request succeeds.
        assert peer.serve(request, 0.25, fault_plan=plan).behavior == "ok"
        assert plan.events[0].site == "peer.p0"

    def test_slow_rule_scales_latency(self):
        request, mapping = _account_request()
        plan = FaultPlan(
            [
                FaultRule(
                    FaultKind.PEER_SLOW, peer="*", at_count=1, slow_factor=100.0
                )
            ]
        )
        baseline = _peer(mapping, seed=4).serve(request, 0.25)
        slowed = _peer(mapping, seed=4).serve(request, 0.25, fault_plan=plan)
        assert slowed.latency_s == pytest.approx(baseline.latency_s * 100.0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(BeamSyncError, match="unknown peer profile"):
            behavior_from_profile("teleporting")


# ---------------------------------------------------------------------------
# scoreboard
# ---------------------------------------------------------------------------


class TestScoreboard:
    def _board(self, **kwargs):
        board = PeerScoreboard(**kwargs)
        board.register("a")
        board.register("b")
        return board

    def test_demotes_after_consecutive_failures(self):
        board = self._board(demote_after=3, cooldown_s=2.0)
        assert not board.record_failure("a", now=0.0)
        assert not board.record_failure("a", now=0.1)
        assert board.record_failure("a", now=0.2)
        assert board.is_demoted("a", now=1.0)
        assert not board.is_demoted("a", now=2.3)  # readmitted after cooldown
        assert board.next_readmission(1.0) == pytest.approx(2.2)
        assert board.demotions_total == 1

    def test_success_resets_the_streak(self):
        board = self._board(demote_after=2)
        board.record_failure("a", now=0.0)
        board.record_ok("a", latency_s=0.01)
        assert not board.record_failure("a", now=0.1)  # streak restarted

    def test_selection_prefers_reliable_fast_peers(self):
        board = self._board()
        board.record_ok("a", latency_s=0.01)
        board.record_failure("b", now=0.0)
        board.record_ok("b", latency_s=0.01)
        outstanding = {"a": 0, "b": 0}
        assert board.select(1.0, outstanding, limit=4) == "a"

    def test_selection_honors_outstanding_limit_and_demotion(self):
        board = self._board(demote_after=1, cooldown_s=5.0)
        board.record_failure("a", now=0.0)  # demoted instantly
        assert board.select(1.0, {"a": 0, "b": 4}, limit=4) is None
        assert board.select(1.0, {"a": 0, "b": 3}, limit=4) == "b"

    def test_unproven_peers_score_optimistically(self):
        board = self._board()
        assert board.score("a") == 1.0


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_fetch_verifies_and_advances_virtual_time(self):
        request, mapping = _account_request()
        scheduler = RequestScheduler([_peer(mapping)])
        blob = scheduler.fetch(request)
        assert node_hash(blob) == request.expected_hash
        assert scheduler.now > 0.0
        assert scheduler.fetched == 1
        assert scheduler.retries == 0

    def test_fetch_many_coalesces_duplicates(self):
        request, mapping = _account_request()
        peer = _peer(mapping)
        scheduler = RequestScheduler([peer])
        results = scheduler.fetch_many([request, request, request])
        assert len(results) == 1
        assert peer.served == 1

    def test_retries_route_around_a_stale_peer(self):
        request, mapping = _account_request()
        stale = _peer(mapping, PeerBehavior(stale_rate=1.0), peer_id="a-stale")
        healthy = _peer(mapping, peer_id="b-healthy")
        scheduler = RequestScheduler([stale, healthy])
        blob = scheduler.fetch(request)
        assert node_hash(blob) == request.expected_hash
        # Stale answers are detected by hash verification and charged.
        stats = scheduler.scoreboard.stats("a-stale")
        assert stats.stale == stats.failures > 0

    def test_dropping_peer_gets_demoted(self):
        request, mapping = _account_request()
        config = SchedulerConfig(demote_after=2, max_attempts=20)
        dropper = _peer(mapping, PeerBehavior(drop_rate=1.0), peer_id="a-drop")
        healthy = _peer(mapping, peer_id="b-ok")
        scheduler = RequestScheduler([dropper, healthy], config)
        paths = [(i, i % 16) for i in range(8)]
        requests = []
        for path in paths:
            blob = b"node-" + bytes(path)
            mapping[schema.account_trie_node_key(tuple(path))] = blob
            requests.append(
                NodeRequest(RequestKind.ACCOUNT_NODE, node_hash(blob), tuple(path))
            )
        results = scheduler.fetch_many(requests)
        assert len(results) == len(requests)
        assert scheduler.scoreboard.stats("a-drop").demotions >= 1
        assert scheduler.retries > 0

    def test_gives_up_after_max_attempts(self):
        request, mapping = _account_request()
        stale = _peer(mapping, PeerBehavior(stale_rate=1.0))
        scheduler = RequestScheduler([stale], SchedulerConfig(max_attempts=3))
        with pytest.raises(PeerNetworkError, match="after 3 attempts"):
            scheduler.fetch(request)
        assert scheduler.retries == 2  # attempts 2 and 3 were re-dispatches

    def test_peer_drop_rule_burst_is_survivable(self):
        request, mapping = _account_request()
        plan = FaultPlan(
            [FaultRule(FaultKind.PEER_DROP, peer="*", at_count=1, repeat=2)]
        )
        plan.validate()
        scheduler = RequestScheduler([_peer(mapping)], fault_plan=plan)
        blob = scheduler.fetch(request)
        assert node_hash(blob) == request.expected_hash
        assert scheduler.retries == 2
        assert len(plan.events) == 2

    def test_determinism_same_seed_same_schedule(self):
        def run():
            request, mapping = _account_request()
            peers = [
                _peer(mapping, PEER_PROFILES["flaky"], peer_id="a", seed=11),
                _peer(mapping, PEER_PROFILES["healthy"], peer_id="b", seed=11),
            ]
            scheduler = RequestScheduler(peers)
            scheduler.fetch(request)
            return scheduler.now, scheduler.retries

        assert run() == run()

    def test_rejects_empty_or_duplicate_peer_sets(self):
        request, mapping = _account_request()
        with pytest.raises(PeerNetworkError, match="at least one peer"):
            RequestScheduler([])
        with pytest.raises(PeerNetworkError, match="duplicate peer ids"):
            RequestScheduler([_peer(mapping), _peer(mapping)])
