"""Tests for the online migration engine (repro migrate)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    MIGRATION_POINTS,
    CrashPoint,
    ImageFormatError,
    MigrationError,
    SimulatedCrash,
)
from repro.faults.plan import FaultPlan
from repro.kvstore.memdb import MemoryKVStore
from repro.migrate import (
    AdmissionGate,
    DeltaLog,
    MigrateJob,
    MigrationConfig,
    MigrationEngine,
    MirroringStore,
    dump_store,
    image_info,
    load_image,
    read_image_pairs,
    run_migrate_crash_sweep,
    run_migrate_job,
    spill_path,
    verify_stores,
    write_image,
)
from repro.migrate.copier import plan_ranges
from repro.migrate.image import ImageWriter, TMP_SUFFIX
from repro.obs import MetricsRegistry
from repro.replay.backends import make_store
from repro.replay.partition import shard_of
from repro.replay.verify import store_fingerprint


def make_pairs(n, *, tag=b"k"):
    return [
        (tag + i.to_bytes(4, "big"), (tag + i.to_bytes(4, "big")) * (1 + i % 7))
        for i in range(n)
    ]


def filled_store(n, *, backend="memdb", tag=b"k"):
    store = make_store(backend)
    for key, value in make_pairs(n, tag=tag):
        store.put(key, value)
    return store


# ---------------------------------------------------------------------------
# image format
# ---------------------------------------------------------------------------


class TestImage:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "img.kvimg"
        pairs = make_pairs(257)
        assert write_image(path, pairs, block_pairs=100) == 257
        assert list(read_image_pairs(path)) == pairs
        info = image_info(path)
        assert info.pairs == 257 and info.complete

    def test_dump_and_load_store(self, tmp_path):
        path = tmp_path / "img.kvimg"
        store = filled_store(120)
        dump_store(path, store)
        other = MemoryKVStore()
        assert load_image(path, other) == 120
        assert store_fingerprint(other) == store_fingerprint(store)

    def test_empty_image(self, tmp_path):
        path = tmp_path / "img.kvimg"
        assert write_image(path, []) == 0
        assert list(read_image_pairs(path)) == []
        assert image_info(path).pairs == 0

    def test_publish_is_atomic(self, tmp_path):
        path = tmp_path / "img.kvimg"

        def exploding():
            yield from make_pairs(10)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            write_image(path, exploding(), block_pairs=4)
        assert not path.exists()
        assert not (tmp_path / ("img.kvimg" + TMP_SUFFIX)).exists()

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "img.kvimg"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 32)
        with pytest.raises(ImageFormatError, match="magic"):
            list(read_image_pairs(path))

    def test_corrupt_block_strict_vs_salvage(self, tmp_path):
        path = tmp_path / "img.kvimg"
        pairs = make_pairs(200)
        write_image(path, pairs, block_pairs=50)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # damage a later block or its CRC
        path.write_bytes(bytes(raw))
        with pytest.raises(ImageFormatError):
            list(read_image_pairs(path))
        salvaged = list(read_image_pairs(path, salvage=True))
        assert 0 < len(salvaged) < 200
        assert salvaged == pairs[: len(salvaged)]

    def test_truncated_spill_salvage(self, tmp_path):
        path = tmp_path / "dst.kvimg"
        spill = spill_path(path)
        writer = ImageWriter(spill)
        pairs = make_pairs(90)
        writer.append_block(pairs[:40])
        writer.append_block(pairs[40:])
        writer.close()  # no footer: this is a spill, not an image
        with pytest.raises(ImageFormatError, match="footer"):
            list(read_image_pairs(spill))
        assert list(read_image_pairs(spill, salvage=True)) == pairs
        # A torn tail block is dropped, whole prefix blocks survive.
        raw = spill.read_bytes()
        spill.write_bytes(raw[:-7])
        assert list(read_image_pairs(spill, salvage=True)) == pairs[:40]

    def test_footer_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "img.kvimg"
        writer = ImageWriter(path)
        writer.append_block(make_pairs(10))
        writer.pairs_written = 99  # lie to the footer
        writer.finalize()
        with pytest.raises(ImageFormatError, match="pairs"):
            list(read_image_pairs(path))

    def test_writer_rejects_append_after_finalize(self, tmp_path):
        writer = ImageWriter(tmp_path / "img.kvimg")
        writer.append_block(make_pairs(3))
        writer.finalize()
        with pytest.raises(ImageFormatError):
            writer.append_block(make_pairs(2))


# ---------------------------------------------------------------------------
# mirror: gate + delta log + facade
# ---------------------------------------------------------------------------


class TestAdmissionGate:
    def test_admit_release_counts(self):
        gate = AdmissionGate()
        gate.admit()
        gate.admit()
        assert gate.in_flight == 2
        gate.release()
        gate.release()
        assert gate.in_flight == 0

    def test_pause_blocks_admission_until_resume(self):
        gate = AdmissionGate()
        assert gate.pause(timeout=1.0)
        assert gate.paused
        admitted = threading.Event()

        def late():
            gate.admit()
            admitted.set()
            gate.release()

        thread = threading.Thread(target=late)
        thread.start()
        assert not admitted.wait(0.05)
        gate.resume()
        assert admitted.wait(2.0)
        thread.join()

    def test_pause_waits_for_in_flight(self):
        gate = AdmissionGate()
        gate.admit()
        release_soon = threading.Timer(0.05, gate.release)
        release_soon.start()
        assert gate.pause(timeout=2.0)
        gate.resume()
        release_soon.join()

    def test_pause_timeout_reports_failure(self):
        gate = AdmissionGate()
        gate.admit()  # never released
        assert not gate.pause(timeout=0.05)
        gate.resume()

    def test_exclusive_window(self):
        gate = AdmissionGate()
        with gate.exclusive(timeout=1.0):
            assert gate.paused and gate.in_flight == 0
        assert not gate.paused


class TestDeltaLog:
    def test_same_key_same_shard(self):
        log = DeltaLog(num_shards=4)
        key = b"some-key"
        log.append(key, b"v1")
        log.append(b"other", b"x")
        log.append(key, None)
        shards = log.drain()
        shard = shards[shard_of(key, 4)]
        assert [entry for entry in shard if entry[0] == key] == [
            (key, b"v1"),
            (key, None),
        ]

    def test_drain_swaps_atomically(self):
        log = DeltaLog(num_shards=2)
        log.append(b"a", b"1")
        assert log.pending == 1
        first = log.drain()
        assert sum(len(s) for s in first) == 1
        assert log.pending == 0
        assert sum(len(s) for s in log.drain()) == 0
        assert log.total_appended == 1


class TestMirroringStore:
    def test_mutations_are_mirrored(self):
        mirror = MirroringStore(MemoryKVStore())
        mirror.put(b"a", b"1")
        mirror.delete(b"a")
        assert mirror.lag == 2
        assert not mirror.has(b"a")

    def test_flip_switches_active_and_stops_mirroring(self):
        source, dest = MemoryKVStore(), MemoryKVStore()
        mirror = MirroringStore(source)
        mirror.put(b"a", b"1")
        mirror.flip(dest)
        assert not mirror.mirroring
        mirror.put(b"b", b"2")
        assert dest.get(b"b") == b"2"
        assert not source.has(b"b")
        assert mirror.lag == 1  # post-flip writes are not mirrored

    def test_scan_holds_admission_slot(self):
        source = MemoryKVStore()
        source.put(b"a", b"1")
        source.put(b"b", b"2")
        mirror = MirroringStore(source)
        iterator = mirror.scan(b"")
        next(iterator)
        assert mirror.gate.in_flight == 1
        iterator.close()
        assert mirror.gate.in_flight == 0
        assert len(list(mirror.scan(b""))) == 2
        assert mirror.gate.in_flight == 0


# ---------------------------------------------------------------------------
# range planning + verification
# ---------------------------------------------------------------------------


class TestPlanRanges:
    def test_ranges_cover_keyspace(self):
        store = filled_store(500)
        ranges = plan_ranges(store, range_pairs=64)
        assert ranges[0].start == b""
        assert ranges[-1].end is None
        for left, right in zip(ranges, ranges[1:]):
            assert left.end == right.start
        covered = sum(
            len(list(store.scan(r.start, r.end))) for r in ranges
        )
        assert covered == 500

    def test_empty_store_single_range(self):
        ranges = plan_ranges(MemoryKVStore(), range_pairs=10)
        assert len(ranges) == 1
        assert ranges[0].start == b"" and ranges[0].end is None


class TestVerify:
    def test_fast_path_level2(self):
        a, b = filled_store(100), filled_store(100)
        report = verify_stores(a, b)
        assert report.match and report.level == 2
        assert report.source_fingerprint == report.destination_fingerprint

    def test_missing_in_destination(self):
        a, b = filled_store(50), filled_store(49)
        report = verify_stores(a, b)
        assert not report.match and report.level == 3
        assert report.diff_count == 1
        assert report.diffs[0].outcome == "missing-in-destination"

    def test_missing_in_source(self):
        a, b = filled_store(20), filled_store(20)
        b.put(b"zzz-extra", b"x")
        report = verify_stores(a, b)
        assert not report.match
        assert report.diffs[0].outcome == "missing-in-source"

    def test_value_mismatch(self):
        a, b = filled_store(20), filled_store(20)
        key = next(iter(a.keys()))
        b.put(key, b"corrupted")
        report = verify_stores(a, b)
        assert not report.match
        diff = report.diffs[0]
        assert diff.outcome == "value-mismatch" and diff.key == key

    def test_diff_cap_keeps_exact_count(self):
        a, b = filled_store(64), MemoryKVStore()
        report = verify_stores(a, b, max_diffs=5)
        assert report.diff_count == 64
        assert len(report.diffs) == 5
        assert "59 more" in report.render()


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class TestMigrationEngine:
    def test_offline_migration(self):
        source = filled_store(300, backend="btree")
        dest = make_store("lsm")
        engine = MigrationEngine(
            source,
            dest,
            MigrationConfig(
                backend_from="btree", backend_to="lsm", range_pairs=64
            ),
            registry=MetricsRegistry(),
        )
        report = engine.run()
        assert report.completed
        assert report.pairs_copied == 300
        assert report.ranges >= 4
        assert report.verify is not None and report.verify.match
        assert store_fingerprint(dest) == store_fingerprint(source)
        assert engine.live.active is dest

    def test_live_writes_converge_through_deltas(self):
        source = filled_store(200)
        dest = MemoryKVStore()
        engine = MigrationEngine(
            source,
            dest,
            MigrationConfig(range_pairs=32, lag_threshold=0),
            registry=MetricsRegistry(),
            on_event=_write_traffic_hook(),
        )
        report = engine.run()
        assert report.completed
        assert report.delta_ops > 0
        assert report.verify.match
        assert store_fingerprint(dest) == store_fingerprint(source)

    def test_repair_pass_fixes_stale_destination(self):
        source = filled_store(100)
        dest = MemoryKVStore()
        # Simulate a resumed migration whose spill reload left the
        # destination stale: one wrong value, one stray key, one gap.
        for key, value in source.scan(b""):
            dest.put(key, value)
        some_key = next(iter(source.keys()))
        dest.put(some_key, b"stale-bytes")
        dest.put(b"zzzz-stray", b"x")
        dest.delete(sorted(source.keys())[-1])
        engine = MigrationEngine(
            source,
            dest,
            MigrationConfig(range_pairs=16, lag_threshold=0),
            registry=MetricsRegistry(),
            resumed=True,
        )
        assert engine.repair
        report = engine.run()
        assert report.completed
        assert report.repaired_keys == 3
        assert store_fingerprint(dest) == store_fingerprint(source)

    def test_verify_divergence_aborts_cutover(self):
        source = filled_store(50)
        dest = MemoryKVStore()

        class Sabotage(MemoryKVStore):
            pass

        engine = MigrationEngine(
            source,
            dest,
            MigrationConfig(range_pairs=1000, lag_threshold=0),
            registry=MetricsRegistry(),
        )

        def corrupt_once(event, eng):
            if event == "delta-round":
                dest.put(b"poison", b"x")  # behind the engine's back

        engine.on_event = corrupt_once
        report = engine.run()
        assert not report.completed
        assert report.verify is not None and not report.verify.match
        assert engine.live.active is source  # rollback: no flip
        assert not engine.mirror.gate.paused  # gate resumed after abort

    @pytest.mark.parametrize("point", MIGRATION_POINTS, ids=lambda p: p.value)
    def test_crash_points_fire(self, point):
        source = filled_store(150)
        plan = FaultPlan.kill_at(point)
        engine = MigrationEngine(
            source,
            MemoryKVStore(),
            MigrationConfig(range_pairs=32, lag_threshold=0, fault_plan=plan),
            registry=MetricsRegistry(),
        )
        with pytest.raises(SimulatedCrash):
            engine.run()
        assert not engine.mirror.gate.paused  # crash never wedges the gate

    def test_config_validation(self):
        with pytest.raises(MigrationError, match="backend-from"):
            MigrationConfig(backend_from="nope").validated()
        with pytest.raises(MigrationError, match="range_pairs"):
            MigrationConfig(range_pairs=0).validated()
        with pytest.raises(MigrationError, match="max_delta_rounds"):
            MigrationConfig(max_delta_rounds=0).validated()


def _write_traffic_hook():
    counter = [0]

    def hook(event, engine):
        if event == "post-cutover":
            return
        for _ in range(3):
            n = counter[0]
            counter[0] += 1
            engine.live.put(b"live" + n.to_bytes(4, "big"), b"v" * (n % 50 + 1))

    return hook


# ---------------------------------------------------------------------------
# runner (file-level jobs)
# ---------------------------------------------------------------------------


class TestRunner:
    def _source_image(self, tmp_path, n=200):
        src = tmp_path / "src.kvimg"
        dump_store(src, filled_store(n))
        return src

    def test_job_publishes_destination(self, tmp_path):
        src = self._source_image(tmp_path)
        dst = tmp_path / "dst.kvimg"
        job = MigrateJob(
            src=src,
            dst=dst,
            config=MigrationConfig(
                backend_from="memdb", backend_to="hashlog", range_pairs=64
            ),
        )
        report = run_migrate_job(job, registry=MetricsRegistry())
        assert report.completed
        assert report.loaded_pairs == 200
        assert report.published_pairs == 200
        assert image_info(dst).pairs == 200
        assert image_info(dst).fingerprint == image_info(src).fingerprint
        assert not spill_path(dst).exists()

    def test_missing_source_rejected(self, tmp_path):
        job = MigrateJob(src=tmp_path / "nope.kvimg", dst=tmp_path / "dst.kvimg")
        with pytest.raises(MigrationError, match="not found"):
            run_migrate_job(job, registry=MetricsRegistry())

    def test_same_path_rejected(self, tmp_path):
        src = self._source_image(tmp_path)
        job = MigrateJob(src=src, dst=src)
        with pytest.raises(MigrationError, match="different"):
            run_migrate_job(job, registry=MetricsRegistry())

    def test_traffic_requires_mirror(self, tmp_path):
        src = self._source_image(tmp_path)
        job = MigrateJob(
            src=src, dst=tmp_path / "dst.kvimg", traffic=src, mirror=False
        )
        with pytest.raises(MigrationError, match="--mirror"):
            run_migrate_job(job, registry=MetricsRegistry())

    def test_crash_leaves_spill_and_no_destination(self, tmp_path):
        src = self._source_image(tmp_path, 300)
        dst = tmp_path / "dst.kvimg"
        plan = FaultPlan.kill_at(CrashPoint.MIGRATE_BULK_COPY, min_block=1)
        job = MigrateJob(
            src=src,
            dst=dst,
            config=MigrationConfig(range_pairs=64, fault_plan=plan),
        )
        with pytest.raises(SimulatedCrash):
            run_migrate_job(job, registry=MetricsRegistry())
        assert not dst.exists()
        spill = spill_path(dst)
        assert spill.exists()
        salvaged = list(read_image_pairs(spill, salvage=True))
        assert len(salvaged) >= 64  # at least the ranges before the kill

        # Resume converges and retires the spill.
        resume = MigrateJob(
            src=src, dst=dst, config=MigrationConfig(range_pairs=64), resume=True
        )
        report = run_migrate_job(resume, registry=MetricsRegistry())
        assert report.completed and report.engine.resumed
        assert report.resumed_pairs == len(salvaged)
        assert image_info(dst).fingerprint == image_info(src).fingerprint
        assert not spill.exists()


# ---------------------------------------------------------------------------
# crash sweep harness
# ---------------------------------------------------------------------------


class TestCrashSweep:
    def test_sweep_covers_all_migration_points(self):
        report = run_migrate_crash_sweep(
            num_keys=180, range_pairs=48, registry=MetricsRegistry()
        )
        assert report.total == len(MIGRATION_POINTS)
        assert report.ok, report.render()
        rendered = report.render()
        for point in MIGRATION_POINTS:
            assert point.value in rendered

    def test_sync_sweep_excludes_migration_points(self):
        from repro.faults.harness import CrashTestConfig, sweep_points

        points = sweep_points(CrashTestConfig())
        assert not set(points) & set(MIGRATION_POINTS)
        assert points  # the sync points are still there

    def test_rejects_non_migration_points(self):
        with pytest.raises(ValueError):
            run_migrate_crash_sweep([CrashPoint.TRIE_FLUSH_BEFORE])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_migrate_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "src.kvimg"
        dump_store(src, filled_store(150))
        dst = tmp_path / "dst.kvimg"
        code = main(
            [
                "migrate",
                str(src),
                str(dst),
                "--backend-from",
                "memdb",
                "--backend-to",
                "btree",
                "--mirror",
                "--verify",
                "--range-pairs",
                "32",
                "--metrics-out",
                str(tmp_path / "m.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "COMPLETE" in out and "MATCH" in out
        assert image_info(dst).pairs == 150
        assert (tmp_path / "m.json").exists()

    def test_migrate_unknown_backend_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "src.kvimg"
        dump_store(src, filled_store(5))
        code = main(
            ["migrate", str(src), str(tmp_path / "d.kvimg"), "--backend-to", "bogus"]
        )
        assert code == 2
        assert "unknown --backend-to" in capsys.readouterr().err

    def test_migrate_missing_source_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["migrate", str(tmp_path / "no.kvimg"), str(tmp_path / "d.kvimg")]
        )
        assert code == 2

    def test_replay_dump_store(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.trace import OpType, TraceRecord, write_trace_v2

        trace = tmp_path / "t.bin"
        records = [
            TraceRecord(op=OpType.WRITE, key=b"K" + i.to_bytes(3, "big"), value_size=20)
            for i in range(300)
        ]
        write_trace_v2(trace, records)
        image = tmp_path / "out.kvimg"
        code = main(
            ["replay", str(trace), "--backend", "memdb", "--dump-store", str(image)]
        )
        assert code == 0
        assert image_info(image).pairs == 300

    def test_replay_dump_store_sharded_matches_serial(self, tmp_path):
        from repro.cli import main
        from repro.core.trace import OpType, TraceRecord, write_trace_v2

        trace = tmp_path / "t.bin"
        records = [
            TraceRecord(
                op=OpType.WRITE, key=b"S" + i.to_bytes(3, "big"), value_size=9
            )
            for i in range(200)
        ]
        write_trace_v2(trace, records)
        serial, sharded = tmp_path / "serial.kvimg", tmp_path / "sharded.kvimg"
        assert main(["replay", str(trace), "--dump-store", str(serial)]) == 0
        assert (
            main(
                [
                    "replay",
                    str(trace),
                    "--workers",
                    "3",
                    "--executor",
                    "thread",
                    "--dump-store",
                    str(sharded),
                ]
            )
            == 0
        )
        assert image_info(serial).fingerprint == image_info(sharded).fingerprint

    def test_replay_dump_store_rejects_process_executor(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.trace import OpType, TraceRecord, write_trace_v2

        trace = tmp_path / "t.bin"
        write_trace_v2(trace, [TraceRecord(op=OpType.WRITE, key=b"k", value_size=4)])
        code = main(
            [
                "replay",
                str(trace),
                "--workers",
                "2",
                "--executor",
                "process",
                "--dump-store",
                str(tmp_path / "x.kvimg"),
            ]
        )
        assert code == 2
        assert "process" in capsys.readouterr().err

    def test_crashtest_migration_points(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "crashtest",
                "--crash-points",
                "migrate-pre-cutover",
                "--migrate-pair",
                "memdb:btree",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "migration crash sweep (memdb->btree)" in out
        assert "1/1 points" in out
