"""Hypothesis stateful tests: LSM store, hybrid store, and path trie.

Each machine drives the structure with random interleaved operations
while maintaining a plain-dict model, checking full observable
equivalence at every step and structural invariants at teardown.
"""

from __future__ import annotations

import hashlib

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.kvstore.hashlog import HashLogStore
from repro.kvstore.lsm import LSMConfig, LSMStore
from repro.trie.nibbles import bytes_to_nibbles
from repro.trie.trie import EMPTY_ROOT, NodeBackend, PathTrie

KEYS = st.integers(min_value=0, max_value=30).map(lambda i: b"key%02d" % i)
VALUES = st.binary(min_size=1, max_size=24)


class LSMMachine(RuleBasedStateMachine):
    """LSM store vs dict under random put/delete/get/scan."""

    def __init__(self):
        super().__init__()
        self.store = LSMStore(
            LSMConfig(memtable_bytes=384, l0_compaction_trigger=2, level_base_bytes=1536)
        )
        self.model: dict[bytes, bytes] = {}

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        assert self.store.get_or_none(key) == self.model.get(key)

    @rule()
    def flush(self):
        self.store.flush_memtable()

    @invariant()
    def length_matches(self):
        assert len(self.store) == len(self.model)

    @rule()
    def scan_matches(self):
        assert dict(self.store.scan(b"")) == self.model


class HashLogMachine(RuleBasedStateMachine):
    """Hash-log store vs dict, exercising GC via small segments."""

    def __init__(self):
        super().__init__()
        self.store = HashLogStore(segment_bytes=256, gc_dead_ratio=0.3)
        self.model: dict[bytes, bytes] = {}

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        assert self.store.get_or_none(key) == self.model.get(key)

    @invariant()
    def no_tombstones_ever(self):
        assert self.store.metrics.tombstones_written == 0

    @invariant()
    def length_matches(self):
        assert len(self.store) == len(self.model)


class _DictBackend(NodeBackend):
    def __init__(self):
        self.data = {}

    def get(self, path):
        return self.data.get(path)

    def peek(self, path):
        return self.data.get(path)

    def put(self, path, blob):
        self.data[path] = blob

    def delete(self, path):
        self.data.pop(path, None)


def _trie_key(index: int):
    return bytes_to_nibbles(hashlib.sha3_256(b"sk%d" % index).digest())


class TrieMachine(RuleBasedStateMachine):
    """Path trie vs dict with interleaved commits.

    Teardown cross-checks the strongest invariant: rebuilding from the
    final model in one shot yields the identical root hash and node set.
    """

    def __init__(self):
        super().__init__()
        self.backend = _DictBackend()
        self.trie = PathTrie(self.backend)
        self.model: dict = {}

    @rule(index=st.integers(min_value=0, max_value=25), value=VALUES)
    def update(self, index, value):
        self.trie.update(_trie_key(index), value)
        self.model[_trie_key(index)] = value

    @rule(index=st.integers(min_value=0, max_value=25))
    def delete(self, index):
        existed = self.trie.delete(_trie_key(index))
        assert existed == (_trie_key(index) in self.model)
        self.model.pop(_trie_key(index), None)

    @rule(index=st.integers(min_value=0, max_value=25))
    def get(self, index):
        assert self.trie.get(_trie_key(index)) == self.model.get(_trie_key(index))

    @rule()
    def commit(self):
        self.trie.commit()

    @invariant()
    def items_match_model(self):
        assert dict(self.trie.items()) == self.model

    def teardown(self):
        root = self.trie.commit()
        if not self.model:
            assert root == EMPTY_ROOT
            assert self.backend.data == {}
            return
        rebuilt_backend = _DictBackend()
        rebuilt = PathTrie(rebuilt_backend)
        for key, value in self.model.items():
            rebuilt.update(key, value)
        assert rebuilt.commit() == root
        assert rebuilt_backend.data == self.backend.data


TestLSMMachine = LSMMachine.TestCase
TestLSMMachine.settings = settings(max_examples=20, stateful_step_count=40, deadline=None)

TestHashLogMachine = HashLogMachine.TestCase
TestHashLogMachine.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)

TestTrieMachine = TrieMachine.TestCase
TestTrieMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
