"""Partial-aggregate cache tests.

The cache's contract is absolute: a warm run must produce results
semantically identical to a cold run (any workers, any analyzer set),
and a changed chunk, a bumped analyzer version, or a damaged entry must
*never* be served stale — they recompute.  The equivalence assertions
reuse the analyzer-level helpers from ``test_parallel`` so "identical"
means the same thing here as it does for the sharded scheduler.
"""

from __future__ import annotations

import os
import pickle

import pytest

from tests.test_parallel import (
    _assert_blockstats_equal,
    _assert_iostats_equal,
    _assert_opdist_equal,
    _random_records,
)

from repro.core.aggcache import (
    CACHE_FORMAT_VERSION,
    AggregateCache,
    analyze_trace_cached,
    analyze_trace_maybe_cached,
    default_cache_dir,
)
from repro.core.opdist import OpDistAnalyzer
from repro.core.parallel import analyze_trace
from repro.core.trace import read_trace_footer, write_trace, write_trace_v2
from repro.errors import TraceFormatError
from repro.obs.registry import MetricsRegistry

ANALYZERS = ("opdist", "blockstats", "iostats")

_EQUAL = {
    "opdist": _assert_opdist_equal,
    "blockstats": _assert_blockstats_equal,
    "iostats": _assert_iostats_equal,
}


def _assert_opdist_counts_equal(a, b):
    """Distribution-only opdist comparison (for ``track_keys=False``,
    where the per-key activity accessors refuse to answer)."""
    assert a.total_ops == b.total_ops
    from repro.core.classes import CLASS_LIST

    for kv_class in CLASS_LIST:
        da, db = a.distribution(kv_class), b.distribution(kv_class)
        assert (da.writes, da.updates, da.reads, da.scans, da.deletes) == (
            db.writes,
            db.updates,
            db.reads,
            db.scans,
            db.deletes,
        ), kv_class


def _assert_results_equal(a, b, track_keys=True):
    for name in ANALYZERS:
        if name == "opdist" and not track_keys:
            _assert_opdist_counts_equal(a[name], b[name])
        else:
            _EQUAL[name](a[name], b[name])


def _write_sample_trace(path, n=2000, seed=11, chunk_size=173):
    records = _random_records(n=n, seed=seed)
    write_trace_v2(path, records, chunk_size=chunk_size)
    return records


def _fresh_cache(tmp_path, label="cache", **kwargs):
    registry = MetricsRegistry()
    cache = AggregateCache(tmp_path / label, registry=registry, **kwargs)
    return cache, registry


def _counter(registry, name):
    return registry.snapshot().get_value(name)


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("track_keys", [True, False])
    def test_warm_identical_to_cold(self, tmp_path, workers, track_keys):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        baseline = analyze_trace(
            str(path), analyzers=ANALYZERS, track_keys=track_keys
        )
        cache, registry = _fresh_cache(tmp_path, f"c{workers}{track_keys}")
        cold = analyze_trace_cached(
            path,
            cache=cache,
            workers=workers,
            analyzers=ANALYZERS,
            track_keys=track_keys,
            registry=registry,
        )
        warm = analyze_trace_cached(
            path,
            cache=cache,
            workers=workers,
            analyzers=ANALYZERS,
            track_keys=track_keys,
            registry=registry,
        )
        _assert_results_equal(cold, baseline, track_keys=track_keys)
        _assert_results_equal(warm, baseline, track_keys=track_keys)

    def test_cold_populates_and_warm_hits(self, tmp_path):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        num_chunks = len(read_trace_footer(path).chunks)
        expected = num_chunks * len(ANALYZERS)
        cache, registry = _fresh_cache(tmp_path)
        analyze_trace_cached(
            path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        assert _counter(registry, "repro_aggcache_misses_total") == expected
        assert _counter(registry, "repro_aggcache_stores_total") == expected
        assert _counter(registry, "repro_aggcache_hits_total") == 0
        analyze_trace_cached(
            path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        assert _counter(registry, "repro_aggcache_hits_total") == expected
        assert _counter(registry, "repro_aggcache_misses_total") == expected
        entries, total = cache.stats()
        assert entries == expected
        assert total > 0

    def test_warm_cache_shared_across_worker_counts(self, tmp_path):
        """Entries are keyed by chunk content, not by how the run that
        produced them was sharded."""
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        baseline = analyze_trace(str(path), analyzers=ANALYZERS)
        cache, registry = _fresh_cache(tmp_path)
        analyze_trace_cached(
            path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        before = _counter(registry, "repro_aggcache_misses_total")
        warm4 = analyze_trace_cached(
            path, cache=cache, workers=4, analyzers=ANALYZERS, registry=registry
        )
        assert _counter(registry, "repro_aggcache_misses_total") == before
        _assert_results_equal(warm4, baseline)


class TestInvalidation:
    def test_single_byte_corruption_strict_raises(self, tmp_path):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        cache, registry = _fresh_cache(tmp_path)
        analyze_trace_cached(
            path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        offset, _ = read_trace_footer(path).chunks[0]
        data = bytearray(path.read_bytes())
        data[offset + 1 + 4] ^= 0xFF  # first payload byte, stored CRC intact
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            analyze_trace_cached(
                path, cache=cache, analyzers=ANALYZERS, registry=registry
            )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_single_byte_corruption_lenient_never_stale(self, tmp_path, workers):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        cache, registry = _fresh_cache(tmp_path, f"c{workers}")
        analyze_trace_cached(
            path, cache=cache, workers=workers, analyzers=ANALYZERS, registry=registry
        )
        full = analyze_trace(str(path), analyzers=ANALYZERS)
        offset, _ = read_trace_footer(path).chunks[0]
        data = bytearray(path.read_bytes())
        data[offset + 1 + 4] ^= 0xFF
        path.write_bytes(bytes(data))
        lenient = analyze_trace_cached(
            path,
            cache=cache,
            workers=workers,
            analyzers=ANALYZERS,
            lenient=True,
            registry=registry,
        )
        uncached = analyze_trace(str(path), analyzers=ANALYZERS, lenient=True)
        _assert_results_equal(lenient, uncached)
        # The corrupted chunk really was dropped, not served from cache.
        assert lenient["opdist"].total_ops < full["opdist"].total_ops

    def test_rewritten_chunk_with_matching_stored_crc_misses(self, tmp_path):
        """Even a forged stored CRC cannot alias a stale entry: the key
        is the *computed* CRC of the bytes actually read."""
        import zlib

        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        cache, registry = _fresh_cache(tmp_path)
        before = analyze_trace_cached(
            path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        offset, _ = read_trace_footer(path).chunks[0]
        footer = read_trace_footer(path)
        next_offset = (
            footer.chunks[1][0] if len(footer.chunks) > 1 else None
        )
        assert next_offset is not None
        data = bytearray(path.read_bytes())
        # Flip one payload byte of an ops column entry (an op value is
        # 0..4; xor with 1 keeps it in range so the chunk still parses),
        # then rewrite the stored CRC to match the corrupted payload.
        payload = bytes(data[offset + 1 + 4 : next_offset])
        mutated = bytearray(payload)
        # First ops byte sits after the 8-byte counts header; +1 mod 5
        # always changes the op while staying a valid OpType.
        mutated[8] = (mutated[8] + 1) % 5
        data[offset + 1 + 4 : next_offset] = mutated
        data[offset + 1 : offset + 5] = zlib.crc32(bytes(mutated)).to_bytes(4, "little")
        path.write_bytes(bytes(data))
        after = analyze_trace_cached(
            path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        # The mutated chunk recomputed (a miss), and the result reflects
        # the new bytes — one op moved between buckets.
        assert _counter(registry, "repro_aggcache_misses_total") == (
            len(footer.chunks) + 1
        ) * len(ANALYZERS)
        assert after["opdist"].total_ops == before["opdist"].total_ops
        with pytest.raises(AssertionError):
            _assert_opdist_equal(after["opdist"], before["opdist"])

    def test_appended_chunks_reuse_old_entries(self, tmp_path):
        """Growing a trace only pays for the new chunks — entries are
        content-addressed, so they survive a rewrite (even to another
        path) as long as whole chunks are unchanged."""
        chunk_size = 100
        records = _random_records(n=400, seed=5)
        extra = _random_records(n=200, seed=6)
        old_path = tmp_path / "old.bin"
        new_path = tmp_path / "new.bin"
        write_trace_v2(old_path, records, chunk_size=chunk_size)
        write_trace_v2(new_path, records + extra, chunk_size=chunk_size)
        old_chunks = len(read_trace_footer(old_path).chunks)
        new_chunks = len(read_trace_footer(new_path).chunks)
        assert new_chunks > old_chunks
        cache, registry = _fresh_cache(tmp_path)
        analyze_trace_cached(
            old_path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        grown = analyze_trace_cached(
            new_path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        assert _counter(registry, "repro_aggcache_hits_total") == old_chunks * len(
            ANALYZERS
        )
        assert _counter(registry, "repro_aggcache_misses_total") == new_chunks * len(
            ANALYZERS
        )
        baseline = analyze_trace(str(new_path), analyzers=ANALYZERS)
        _assert_results_equal(grown, baseline)

    def test_analyzer_version_bump_orphans_entries(self, tmp_path, monkeypatch):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        num_chunks = len(read_trace_footer(path).chunks)
        cache, registry = _fresh_cache(tmp_path)
        analyze_trace_cached(
            path, cache=cache, analyzers=("opdist",), registry=registry
        )
        monkeypatch.setattr(OpDistAnalyzer, "CACHE_VERSION", OpDistAnalyzer.CACHE_VERSION + 1)
        result = analyze_trace_cached(
            path, cache=cache, analyzers=("opdist",), registry=registry
        )
        assert _counter(registry, "repro_aggcache_hits_total") == 0
        assert _counter(registry, "repro_aggcache_misses_total") == 2 * num_chunks
        baseline = analyze_trace(str(path), analyzers=("opdist",))
        _assert_opdist_equal(result["opdist"], baseline["opdist"])

    def test_track_keys_partitions_the_cache(self, tmp_path):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        cache, registry = _fresh_cache(tmp_path)
        analyze_trace_cached(
            path, cache=cache, analyzers=("opdist",), track_keys=True, registry=registry
        )
        analyze_trace_cached(
            path, cache=cache, analyzers=("opdist",), track_keys=False, registry=registry
        )
        assert _counter(registry, "repro_aggcache_hits_total") == 0


class TestEntryStore:
    def test_corrupt_entry_rejected_and_recomputed(self, tmp_path):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        cache, registry = _fresh_cache(tmp_path)
        analyze_trace_cached(
            path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        victims = sorted(cache.directory.glob("*.agg"))
        assert victims
        blob = bytearray(victims[0].read_bytes())
        blob[-1] ^= 0xFF  # damage the pickled payload; CRC check must catch it
        victims[0].write_bytes(bytes(blob))
        baseline = analyze_trace(str(path), analyzers=ANALYZERS)
        warm = analyze_trace_cached(
            path, cache=cache, analyzers=ANALYZERS, registry=registry
        )
        assert _counter(registry, "repro_aggcache_invalid_total") == 1
        _assert_results_equal(warm, baseline)
        # The damaged entry was deleted and rewritten; next run is all-hit.
        analyze_trace_cached(path, cache=cache, analyzers=ANALYZERS, registry=registry)
        assert _counter(registry, "repro_aggcache_invalid_total") == 1

    def test_get_rejects_truncated_magic_and_version(self, tmp_path):
        cache, registry = _fresh_cache(tmp_path)
        cache.put("k1", {"x": 1})
        path = cache._path_for("k1")
        assert cache.get("k1") == {"x": 1}
        path.write_bytes(b"EK")  # truncated below any valid header
        assert cache.get("k1") is None
        cache.put("k1", {"x": 1})
        blob = bytearray(path.read_bytes())
        blob[4] ^= 0xFF  # format version byte
        path.write_bytes(bytes(blob))
        assert cache.get("k1") is None
        assert _counter(registry, "repro_aggcache_invalid_total") == 2

    def test_key_echo_rejects_foreign_entry(self, tmp_path):
        cache, registry = _fresh_cache(tmp_path)
        cache.put("original-key", [1, 2, 3])
        original = cache._path_for("original-key")
        # Simulate a hash-prefix collision: another key's bytes land in
        # this key's file.  The embedded key echo must reject it.
        foreign = AggregateCache(tmp_path / "other", registry=MetricsRegistry())
        foreign.put("other-key", [9])
        original.write_bytes(foreign._path_for("other-key").read_bytes())
        assert cache.get("original-key") is None

    def test_atomic_publish_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        cache, registry = _fresh_cache(tmp_path)
        analyze_trace_cached(path, cache=cache, analyzers=ANALYZERS, registry=registry)
        leftovers = [
            name
            for name in os.listdir(cache.directory)
            if not name.endswith(".agg")
        ]
        assert leftovers == []

    def test_lru_eviction_bounds_size_and_keeps_recent(self, tmp_path):
        # Populate through an unbounded handle with controlled mtimes,
        # then trip eviction from a bounded handle on the same directory
        # (entries are plain files, so handles compose freely).
        writer = AggregateCache(tmp_path / "lru", registry=MetricsRegistry())
        payload = list(range(200))  # ~few hundred bytes pickled
        for index in range(50):
            writer.put(f"key-{index}", payload)
            os.utime(
                writer._path_for(f"key-{index}"), (1_000_000 + index, 1_000_000 + index)
            )
        registry = MetricsRegistry()
        bounded = AggregateCache(tmp_path / "lru", max_bytes=4096, registry=registry)
        bounded.put("key-50", payload)
        entries, total = bounded.stats()
        assert total <= 4096
        assert entries < 50
        assert _counter(registry, "repro_aggcache_evictions_total") > 0
        # The freshest entry survives, the oldest is long gone.
        assert bounded.get("key-50") is not None
        assert bounded.get("key-0") is None

    def test_entry_keys_are_distinct_per_dimension(self):
        base = AggregateCache.entry_key(0xDEADBEEF, "opdist", 1, True)
        assert f":f{CACHE_FORMAT_VERSION}:" in base
        variants = {
            base,
            AggregateCache.entry_key(0xDEADBEF0, "opdist", 1, True),
            AggregateCache.entry_key(0xDEADBEEF, "iostats", 1, True),
            AggregateCache.entry_key(0xDEADBEEF, "opdist", 2, True),
            AggregateCache.entry_key(0xDEADBEEF, "opdist", 1, False),
        }
        assert len(variants) == 5

    def test_clear_removes_everything(self, tmp_path):
        cache, _ = _fresh_cache(tmp_path)
        for index in range(5):
            cache.put(f"key-{index}", index)
        assert cache.clear() == 5
        assert cache.stats() == (0, 0)
        assert cache.get("key-0") is None

    def test_default_cache_dir_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"
        assert AggregateCache().directory == tmp_path / "envcache"

    def test_rejects_nonpositive_max_bytes(self, tmp_path):
        with pytest.raises(ValueError):
            AggregateCache(tmp_path, max_bytes=0, registry=MetricsRegistry())


class TestFrontDoor:
    def test_v1_trace_falls_back_uncached(self, tmp_path):
        path = tmp_path / "t1.bin"
        records = _random_records(n=500, seed=3)
        write_trace(path, records)
        cache, registry = _fresh_cache(tmp_path)
        result = analyze_trace_maybe_cached(
            str(path), cache=cache, analyzers=ANALYZERS, registry=registry
        )
        baseline = analyze_trace(str(path), analyzers=ANALYZERS)
        _assert_results_equal(result, baseline)
        assert cache.stats() == (0, 0)  # nothing cached for v1 inputs

    def test_no_cache_matches_cached(self, tmp_path):
        path = tmp_path / "t.bin"
        _write_sample_trace(path)
        cache, registry = _fresh_cache(tmp_path)
        cached = analyze_trace_maybe_cached(
            str(path), cache=cache, analyzers=ANALYZERS, registry=registry
        )
        plain = analyze_trace_maybe_cached(
            str(path), cache=None, analyzers=ANALYZERS
        )
        _assert_results_equal(cached, plain)

    def test_record_iterable_falls_back(self, tmp_path):
        records = _random_records(n=300, seed=9)
        cache, _ = _fresh_cache(tmp_path)
        result = analyze_trace_maybe_cached(
            records, cache=cache, analyzers=("opdist",)
        )
        assert result["opdist"].total_ops == len(records)
        assert cache.stats() == (0, 0)

    def test_partials_roundtrip_pickle(self, tmp_path):
        """Cached partials survive pickling with full fidelity — the
        property the on-disk format rests on."""
        path = tmp_path / "t.bin"
        _write_sample_trace(path, n=600)
        baseline = analyze_trace(str(path), analyzers=ANALYZERS)
        for name in ANALYZERS:
            clone = pickle.loads(pickle.dumps(baseline[name]))
            _EQUAL[name](clone, baseline[name])


class TestCacheCLI:
    def test_cache_show_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "clicache"
        cache = AggregateCache(cache_dir, registry=MetricsRegistry())
        cache.put("k", [1, 2])
        code = main(["cache", "show", "--cache-dir", str(cache_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        code = main(["cache", "clear", "--cache-dir", str(cache_dir)])
        assert code == 0
        assert "removed 1" in capsys.readouterr().out
        code = main(["cache", "show", "--cache-dir", str(cache_dir)])
        assert code == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_analyze_no_cache_leaves_directory_empty(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.bin"
        _write_sample_trace(path, n=600)
        cache_dir = tmp_path / "clicache"
        code = main(
            ["analyze", str(path), "--no-cache", "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        assert "Operation distribution" in capsys.readouterr().out
        assert not cache_dir.exists() or not any(cache_dir.iterdir())

    def test_analyze_warm_run_reports_hits(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.bin"
        _write_sample_trace(path, n=600)
        cache_dir = tmp_path / "clicache"
        metrics = tmp_path / "m.json"
        assert main(["analyze", str(path), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "analyze",
                    str(path),
                    "--cache-dir",
                    str(cache_dir),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        from repro.obs import read_snapshot_json

        snap = read_snapshot_json(metrics)
        assert snap.value("repro_aggcache_hits_total") > 0

    def test_analyze_missing_trace_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["analyze", str(tmp_path / "missing.bin")])
        assert code == 2
        assert capsys.readouterr().err


class TestConcurrentPublish:
    """Racing publishers of the same entry must never tear a read.

    ``put`` publishes via temp-write-then-``os.replace``; the temp name
    must be unique across *instances* as well as threads.  (A per-
    instance sequence collides: two caches in one process share the pid
    and both start at 0, so racing publishers of the same key would
    interleave writes into one temp file — publishing a torn blob and
    crashing the loser's rename with FileNotFoundError.)
    """

    @pytest.mark.slow
    def test_racing_publishers_same_key_no_torn_reads(self, tmp_path):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        directory = tmp_path / "shared"
        # Distinct instances on one directory: the cross-instance case.
        writers = [
            AggregateCache(directory, registry=MetricsRegistry()) for _ in range(4)
        ]
        reader = AggregateCache(directory, registry=MetricsRegistry())
        key = AggregateCache.entry_key(0xABCD, "opdist", 1, True)
        valid = {i: {"writer": i, "payload": list(range(50 + i))} for i in range(4)}

        start = threading.Barrier(5)
        stop = threading.Event()
        put_errors: list = []
        torn: list = []

        def publish(index: int) -> None:
            cache = writers[index]
            start.wait()
            for _ in range(150):
                try:
                    cache.put(key, valid[index])
                except Exception as exc:  # the old naming raced here
                    put_errors.append(exc)
                    return

        def poll() -> None:
            start.wait()
            while not stop.is_set():
                value = reader.get(key)
                # a miss is fine (first put may not have landed; a torn
                # blob is deleted as invalid) — a *wrong* value is not
                if value is not None and value not in valid.values():
                    torn.append(value)
                    return

        with ThreadPoolExecutor(max_workers=5) as pool:
            futures = [pool.submit(publish, i) for i in range(4)]
            poller = pool.submit(poll)
            for future in futures:
                future.result(timeout=60)
            stop.set()
            poller.result(timeout=60)

        assert not put_errors, put_errors
        assert not torn, torn
        # the survivor is intact and owned by one of the writers
        final = reader.get(key)
        assert final in valid.values()
        # no temp litter left behind
        assert not list(directory.glob(".*.tmp"))

    def test_temp_names_unique_across_instances(self, tmp_path):
        """Two instances in one process never pick the same temp name
        (the module-level sequence, not a per-instance counter)."""
        import repro.core.aggcache as aggcache_mod

        seen = set()
        original = os.replace

        def spy(src, dst):
            assert src not in seen, f"temp name reused: {src}"
            seen.add(src)
            return original(src, dst)

        a = AggregateCache(tmp_path / "d", registry=MetricsRegistry())
        b = AggregateCache(tmp_path / "d", registry=MetricsRegistry())
        key = AggregateCache.entry_key(1, "opdist", 1, True)
        try:
            aggcache_mod.os.replace = spy
            for _ in range(10):
                a.put(key, {"x": 1})
                b.put(key, {"x": 2})
        finally:
            aggcache_mod.os.replace = original
        assert len(seen) == 20
