"""StateDB tests: world-state access over tries + snapshot integration."""

from __future__ import annotations

from repro.chain.account import Account
from repro.core.classes import KVClass, classify_key
from repro.core.trace import OpType
from repro.gethdb import schema
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.snapshot import SnapshotTree
from repro.gethdb.state import StateDB, TrieNodeStore, hash_address
from repro.trie.trie import EMPTY_ROOT

ADDR1 = b"\x11" * 20
ADDR2 = b"\x22" * 20
SLOT = b"\x05" * 32


def bare_state():
    db = GethDatabase(DBConfig.bare_trace_config())
    return db, StateDB(db)


def snap_state():
    db = GethDatabase(DBConfig.cache_trace_config())
    snaps = SnapshotTree(db, flush_depth=1, flush_interval=1)
    return db, snaps, StateDB(db, snaps)


class TestAccounts:
    def test_missing_account_is_none(self):
        _, state = bare_state()
        assert state.get_account(ADDR1) is None

    def test_set_then_get_before_commit(self):
        _, state = bare_state()
        state.set_account(ADDR1, Account(nonce=3))
        assert state.get_account(ADDR1).nonce == 3

    def test_commit_persists_via_trie(self):
        db, state = bare_state()
        state.set_account(ADDR1, Account(nonce=1, balance=9))
        root = state.commit()
        db.commit_batch()
        assert root != EMPTY_ROOT
        fresh = StateDB(db)
        account = fresh.get_account(ADDR1)
        assert account.nonce == 1 and account.balance == 9

    def test_commit_root_changes_with_state(self):
        db, state = bare_state()
        state.set_account(ADDR1, Account(nonce=1))
        root1 = state.commit()
        db.commit_batch()
        state.set_account(ADDR1, Account(nonce=2))
        root2 = state.commit()
        assert root1 != root2

    def test_destruct_removes_account(self):
        db, state = bare_state()
        state.set_account(ADDR1, Account(nonce=1))
        state.commit()
        db.commit_batch()
        state.destruct_account(ADDR1)
        state.commit()
        db.commit_batch()
        assert StateDB(db).get_account(ADDR1) is None


class TestStorage:
    def test_missing_slot_is_empty(self):
        _, state = bare_state()
        assert state.get_storage(ADDR1, SLOT) == b""

    def test_storage_roundtrip_through_commit(self):
        db, state = bare_state()
        state.set_account(ADDR1, Account(nonce=1))
        state.set_storage(ADDR1, SLOT, b"stored")
        state.commit()
        db.commit_batch()
        assert StateDB(db).get_storage(ADDR1, SLOT) == b"stored"

    def test_storage_updates_account_root(self):
        db, state = bare_state()
        state.set_account(ADDR1, Account(nonce=1))
        state.commit()
        db.commit_batch()
        state.set_storage(ADDR1, SLOT, b"v")
        state.commit()
        db.commit_batch()
        account = StateDB(db).get_account(ADDR1)
        assert account.storage_root != EMPTY_ROOT

    def test_clearing_slot_deletes_from_trie(self):
        db, state = bare_state()
        state.set_account(ADDR1, Account(nonce=1))
        state.set_storage(ADDR1, SLOT, b"v")
        state.commit()
        db.commit_batch()
        state.set_storage(ADDR1, SLOT, b"")
        state.commit()
        db.commit_batch()
        fresh = StateDB(db)
        assert fresh.get_storage(ADDR1, SLOT) == b""
        assert fresh.get_account(ADDR1).storage_root == EMPTY_ROOT

    def test_destruct_deletes_storage_trie_nodes(self):
        db, state = bare_state()
        state.set_account(ADDR1, Account(nonce=1))
        for i in range(5):
            state.set_storage(ADDR1, bytes([i]) * 32, b"v%d" % i)
        state.commit()
        db.commit_batch()
        account_hash = hash_address(ADDR1)
        prefix = b"O" + account_hash
        assert any(k.startswith(prefix) for k in db.store.inner.keys())
        state.destruct_account(ADDR1)
        state.commit()
        db.commit_batch()
        assert not any(k.startswith(prefix) for k in db.store.inner.keys())


class TestCode:
    def test_set_and_get_code(self):
        db, state = bare_state()
        code_hash = state.set_code(ADDR1, b"\x60\x60bytecode")
        assert state.get_code(code_hash) == b"\x60\x60bytecode"
        state.commit()
        db.commit_batch()
        assert db.has(schema.code_key(code_hash))

    def test_empty_code_hash_shortcut(self):
        from repro.chain.account import EMPTY_CODE_HASH

        db, state = bare_state()
        db.collector.clear()
        assert state.get_code(EMPTY_CODE_HASH) == b""
        assert db.collector.count == 0  # no KV read for empty code

    def test_code_reads_are_traced_even_with_caching(self):
        db, snaps, state = snap_state()
        code_hash = state.set_code(ADDR1, b"contractcode")
        state.commit()
        db.commit_batch()
        state2 = StateDB(db, snaps)
        db.collector.clear()
        state2.get_code(code_hash)
        state2.get_code(code_hash)
        code_reads = [
            r
            for r in db.collector.records
            if r.op is OpType.READ and classify_key(r.key) is KVClass.CODE
        ]
        assert len(code_reads) == 2


class TestSnapshotIntegration:
    def test_account_reads_served_by_snapshot(self):
        db, snaps, state = snap_state()
        state.set_account(ADDR1, Account(nonce=4))
        state.commit()
        state.flush_trie_nodes()
        db.commit_batch()
        fresh = StateDB(db, snaps)
        account = fresh.get_account(ADDR1)
        assert account.nonce == 4

    def test_no_trie_reads_when_snapshot_enabled(self):
        db, snaps, state = snap_state()
        state.set_account(ADDR1, Account(nonce=4))
        state.commit()
        snaps.flush_all()
        state.flush_trie_nodes()
        db.commit_batch()
        fresh = StateDB(db, snaps)
        db.collector.clear()
        fresh.get_account(ADDR1)
        trie_reads = [
            r
            for r in db.collector.records
            if classify_key(r.key) is KVClass.TRIE_NODE_ACCOUNT
        ]
        assert trie_reads == []

    def test_snapshot_and_trie_agree(self):
        db, snaps, state = snap_state()
        state.set_account(ADDR1, Account(nonce=9, balance=77))
        state.set_storage(ADDR1, SLOT, b"both")
        state.commit()
        snaps.flush_all()
        state.flush_trie_nodes()
        db.commit_batch()
        via_snapshot = StateDB(db, snaps)
        via_trie = StateDB(db)  # no snapshot -> trie path
        assert via_snapshot.get_account(ADDR1).balance == 77
        assert via_trie.get_account(ADDR1).balance == 77
        assert via_snapshot.get_storage(ADDR1, SLOT) == b"both"
        assert via_trie.get_storage(ADDR1, SLOT) == b"both"


class TestLookupDepths:
    def test_trie_lookups_record_traversal_depth(self):
        db, state = bare_state()
        for i in range(64):
            state.set_account(bytes([i]) * 20, Account(nonce=i))
        state.commit()
        db.commit_batch()
        fresh = StateDB(db)
        for i in range(64):
            fresh.get_account(bytes([i]) * 20)
        assert sum(fresh.lookup_depths.values()) == 64
        # 64 accounts force a branch at the root: depth >= 2 somewhere.
        assert max(fresh.lookup_depths) >= 2

    def test_snapshot_lookups_cost_one_request(self):
        db, snaps, state = snap_state()
        for i in range(16):
            state.set_account(bytes([i]) * 20, Account(nonce=i))
        state.commit()
        snaps.flush_all()
        state.flush_trie_nodes()
        db.commit_batch()
        fresh = StateDB(db, snaps)
        for i in range(16):
            fresh.get_account(bytes([i]) * 20)
        # Snapshot acceleration: every lookup is a single request —
        # the paper's "from up to 64 requests per lookup to one".
        assert set(fresh.lookup_depths) == {1}
        assert fresh.lookup_depths[1] == 16


class TestTrieNodeStore:
    def test_unbuffered_passthrough(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        nodes = TrieNodeStore(db, buffered=False)
        nodes.put(b"A\x01", b"node")
        db.commit_batch()
        assert db.has(b"A\x01")

    def test_buffered_coalesces_rewrites(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        nodes = TrieNodeStore(db, buffered=True)
        for i in range(10):
            nodes.put(b"A\x01", b"version%d" % i)
        assert nodes.pending_nodes == 1
        flushed = nodes.flush()
        db.commit_batch()
        assert flushed == 1
        assert db.store.inner.get(b"A\x01") == b"version9"

    def test_buffered_create_then_delete_never_hits_store(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        nodes = TrieNodeStore(db, buffered=True)
        nodes.put(b"A\x02", b"ephemeral")
        nodes.delete(b"A\x02")
        db.collector.clear()
        nodes.flush()
        db.commit_batch()
        assert db.collector.count == 0

    def test_buffered_delete_of_persisted_key(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        db.write_now(b"A\x03", b"old")
        nodes = TrieNodeStore(db, buffered=True)
        nodes.delete(b"A\x03")
        nodes.flush()
        db.commit_batch()
        assert not db.has(b"A\x03")

    def test_get_sees_buffer(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        nodes = TrieNodeStore(db, buffered=True)
        nodes.put(b"A\x04", b"buffered")
        db.collector.clear()
        assert nodes.get(b"A\x04") == b"buffered"
        assert db.collector.count == 0  # memory hit, untraced
