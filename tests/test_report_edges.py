"""Edge-case tests for report rendering and size statistics."""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.opdist import OpDistAnalyzer
from repro.core.report import (
    _fmt_count,
    _fmt_pct,
    render_frequency_distribution,
    render_op_table,
    render_size_distribution,
    render_table1,
)
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType, TraceRecord


class TestFormatters:
    def test_count_units(self):
        assert _fmt_count(1) == "1"
        assert _fmt_count(999) == "999"
        assert _fmt_count(1_500) == "1.5 K"
        assert _fmt_count(2_500_000) == "2.5 M"

    def test_pct_dash_for_zero(self):
        assert _fmt_pct(0) == "-"

    def test_pct_small_values(self):
        assert _fmt_pct(0.002) == "0.002"
        rendered = _fmt_pct(0.000001)
        assert "1" in rendered and rendered != "-"


class TestEmptyInputs:
    def test_empty_table1(self):
        rendered = render_table1(SizeAnalyzer())
        assert "0 KV pairs" in rendered

    def test_empty_op_table(self):
        rendered = render_op_table(OpDistAnalyzer(), "empty")
        assert "0 KV operations" in rendered

    def test_size_distribution_unseen_class(self):
        rendered = render_size_distribution(SizeAnalyzer(), KVClass.CODE)
        assert "Code" in rendered  # header renders, no crash

    def test_frequency_distribution_unseen_class(self):
        rendered = render_frequency_distribution(
            OpDistAnalyzer(), KVClass.CODE, OpType.READ
        )
        assert "Code" in rendered


class TestTruncation:
    def test_size_distribution_truncates(self):
        analyzer = SizeAnalyzer()
        for size in range(100):
            analyzer.add_pair(b"A" + bytes([size]), size)
        rendered = render_size_distribution(
            analyzer, KVClass.TRIE_NODE_ACCOUNT, max_points=5
        )
        assert "more sizes" in rendered
        assert rendered.count("size=") == 5

    def test_size_distribution_untruncated(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"A\x01", 10)
        rendered = render_size_distribution(
            analyzer, KVClass.TRIE_NODE_ACCOUNT, max_points=None
        )
        assert "more sizes" not in rendered

    def test_frequency_distribution_truncates(self):
        records = []
        for frequency in range(1, 40):
            key = b"A" + bytes([frequency])
            records += [TraceRecord(OpType.READ, key, 1, 0)] * frequency
        analyzer = OpDistAnalyzer().consume(records)
        rendered = render_frequency_distribution(
            analyzer, KVClass.TRIE_NODE_ACCOUNT, OpType.READ, max_points=5
        )
        assert "more frequencies" in rendered


class TestTable1ConfidenceIntervals:
    def test_variable_sizes_show_ci(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"A\x01", 50)
        analyzer.add_pair(b"A\x02\x03", 150)
        rendered = render_table1(analyzer)
        row = [l for l in rendered.splitlines() if l.startswith("TrieNodeAccount")][0]
        assert "±" in row

    def test_constant_sizes_no_ci(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"l" + b"\x01" * 32, 4)
        analyzer.add_pair(b"l" + b"\x02" * 32, 4)
        rendered = render_table1(analyzer)
        row = [l for l in rendered.splitlines() if l.startswith("TxLookup")][0]
        assert "±" not in row
