"""Shared construction of the golden findings report.

Both the regression test (``tests/test_report_golden.py``) and the
refresh script (``tests/golden/update_golden.py``) must build the
report from *exactly* the same inputs — this module is that single
definition.  It mirrors the session fixtures in ``tests/conftest.py``
(same ``SMALL_WORKLOAD``, block counts, cache budget, and correlation
distances), so test runs reuse the already-computed fixtures and the
update script reproduces them from scratch.
"""

from __future__ import annotations

from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "golden"
FINDINGS_GOLDEN = GOLDEN_DIR / "findings_report.txt"

#: Must match the ``trace_pair``/``*_analysis`` fixtures in conftest.py.
NUM_BLOCKS = 80
WARMUP_BLOCKS = 40
CACHE_BYTES = 128 * 1024
CORRELATION_DISTANCES = (0, 1, 4, 16, 64, 256, 1024)


def build_golden_report_text(cache_analysis, bare_analysis) -> str:
    """Render the findings report for the golden comparison."""
    from repro.core.findings import evaluate_findings

    return evaluate_findings(cache_analysis, bare_analysis).render() + "\n"


def build_analyses_from_scratch():
    """Recompute the fixture analyses (used by the update script)."""
    from repro.core.analysis import TraceAnalysis
    from repro.sync.driver import run_trace_pair
    from tests.conftest import SMALL_WORKLOAD

    cache_result, bare_result = run_trace_pair(
        SMALL_WORKLOAD,
        num_blocks=NUM_BLOCKS,
        warmup_blocks=WARMUP_BLOCKS,
        cache_bytes=CACHE_BYTES,
    )
    cache = TraceAnalysis(
        "CacheTrace",
        cache_result.records,
        cache_result.store_snapshot,
        correlation_distances=CORRELATION_DISTANCES,
    )
    bare = TraceAnalysis(
        "BareTrace",
        bare_result.records,
        bare_result.store_snapshot,
        correlation_distances=CORRELATION_DISTANCES,
    )
    return cache, bare
