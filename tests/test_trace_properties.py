"""Property-based round-trip tests for trace format v2.

Seeded ``random.Random`` loops (no external property-testing
dependency) exercise the chunked columnar format across randomized
record shapes, chunk sizes, and flush points:

* write -> read round trips preserve every record in order;
* the footer indexes every chunk correctly, so random-access reads
  reassemble the exact stream;
* legacy un-checksummed chunk sections (tag 0x01) and mixed-tag files
  still parse — forward compatibility with pre-CRC traces;
* single-byte corruption in a checksummed chunk fails strict reads and
  costs lenient footer-driven reads exactly the damaged chunk.
"""

from __future__ import annotations

import random

import pytest

import repro.core.trace as trace_mod
from repro.core.columnar import TraceChunk
from repro.core.trace import (
    ColumnarTraceWriter,
    OpType,
    TraceRecord,
    open_trace_chunks,
    read_chunk_at,
    read_trace_footer,
    write_trace_v2,
)
from repro.errors import TraceFormatError

OPS = list(OpType)


def random_records(rng: random.Random, count: int) -> list[TraceRecord]:
    """Records with adversarial shapes: empty keys, duplicate keys (the
    interning path), zero sizes, and non-monotonic blocks."""
    keys = [rng.randbytes(rng.randrange(0, 48)) for _ in range(max(1, count // 3))]
    return [
        TraceRecord(
            op=rng.choice(OPS),
            key=rng.choice(keys) if rng.random() < 0.5 else rng.randbytes(rng.randrange(0, 64)),
            value_size=rng.choice((0, rng.randrange(0, 1 << 20))),
            block=rng.randrange(0, 1 << 24),
        )
        for _ in range(count)
    ]


def as_tuples(records) -> list[tuple]:
    return [(r.op, r.key, r.value_size, r.block) for r in records]


def read_all(path, **kwargs) -> list[TraceRecord]:
    out: list[TraceRecord] = []
    for chunk in open_trace_chunks(path, **kwargs):
        out.extend(chunk.to_records())
    return out


def legacy_pack_chunk(chunk: TraceChunk) -> bytes:
    """The pre-CRC v2 chunk section: tag 0x01 + bare payload."""
    payload = b"".join(
        (
            trace_mod._CHUNK_COUNTS.pack(len(chunk), chunk.num_keys),
            chunk.ops.astype("<u1", copy=False).tobytes(),
            chunk.value_sizes.astype("<u4", copy=False).tobytes(),
            chunk.blocks.astype("<u4", copy=False).tobytes(),
            chunk.key_ids.astype("<u4", copy=False).tobytes(),
            chunk.key_lens.astype("<u2").tobytes(),
            b"".join(chunk.keys),
        )
    )
    return bytes([trace_mod._TAG_CHUNK]) + payload


class TestRoundTripProperties:
    @pytest.mark.parametrize("seed", range(12))
    def test_write_read_round_trip(self, tmp_path, seed):
        rng = random.Random(1000 + seed)
        records = random_records(rng, rng.randrange(0, 400))
        chunk_size = rng.choice((1, 3, 17, 100, 4096))
        path = tmp_path / "t.bin"
        count = write_trace_v2(path, records, chunk_size=chunk_size)
        assert count == len(records)
        assert as_tuples(read_all(path)) == as_tuples(records)
        footer = read_trace_footer(path)
        assert footer.total_records == len(records)
        assert sum(n for _, n in footer.chunks) == len(records)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_flush_points(self, tmp_path, seed):
        """Interleaving append() with pre-built write_chunk() at random
        boundaries must not change the logical record stream."""
        rng = random.Random(2000 + seed)
        records = random_records(rng, rng.randrange(1, 300))
        path = tmp_path / "t.bin"
        with ColumnarTraceWriter.open(path, chunk_size=rng.randrange(1, 50)) as writer:
            index = 0
            while index < len(records):
                if rng.random() < 0.3:
                    take = rng.randrange(0, 30)
                    writer.write_chunk(
                        TraceChunk.from_records(records[index : index + take])
                    )
                    index += take
                else:
                    writer.append(records[index])
                    index += 1
        assert as_tuples(read_all(path)) == as_tuples(records)
        footer = read_trace_footer(path)
        assert footer.total_records == len(records)

    @pytest.mark.parametrize("seed", range(8))
    def test_footer_random_access(self, tmp_path, seed):
        """Reading chunks via footer offsets in any order reassembles
        the stream when sorted back by offset (the shard contract)."""
        rng = random.Random(3000 + seed)
        records = random_records(rng, rng.randrange(1, 500))
        path = tmp_path / "t.bin"
        write_trace_v2(path, records, chunk_size=rng.randrange(1, 80))
        footer = read_trace_footer(path)
        order = list(footer.chunks)
        rng.shuffle(order)
        by_offset = {}
        for offset, count in order:
            chunk = read_chunk_at(path, offset)
            assert len(chunk) == count
            by_offset[offset] = chunk
        reassembled = []
        for offset in sorted(by_offset):
            reassembled.extend(by_offset[offset].to_records())
        assert as_tuples(reassembled) == as_tuples(records)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.bin"
        assert write_trace_v2(path, []) == 0
        assert read_all(path) == []
        footer = read_trace_footer(path)
        assert footer.total_records == 0
        assert footer.chunks == ()


class TestLegacyChunkSections:
    @pytest.mark.parametrize("seed", range(6))
    def test_legacy_tag_round_trip(self, tmp_path, seed, monkeypatch):
        """Files whose chunks are all legacy 0x01 sections still parse,
        streaming and footer-driven."""
        rng = random.Random(4000 + seed)
        records = random_records(rng, rng.randrange(1, 250))
        path = tmp_path / "t.bin"
        monkeypatch.setattr(trace_mod, "_pack_chunk", legacy_pack_chunk)
        write_trace_v2(path, records, chunk_size=rng.randrange(1, 60))
        monkeypatch.undo()
        assert as_tuples(read_all(path)) == as_tuples(records)
        footer = read_trace_footer(path)
        for offset, count in footer.chunks:
            assert len(read_chunk_at(path, offset)) == count

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_tag_file(self, tmp_path, seed, monkeypatch):
        """Legacy and CRC chunk sections can coexist in one file."""
        rng = random.Random(5000 + seed)
        records = random_records(rng, rng.randrange(2, 250))
        path = tmp_path / "t.bin"
        real_pack = trace_mod._pack_chunk

        def flaky_pack(chunk, _rng=rng):
            return (legacy_pack_chunk if _rng.random() < 0.5 else real_pack)(chunk)

        monkeypatch.setattr(trace_mod, "_pack_chunk", flaky_pack)
        write_trace_v2(path, records, chunk_size=rng.randrange(1, 40))
        monkeypatch.undo()
        assert as_tuples(read_all(path)) == as_tuples(records)


class TestCorruption:
    @pytest.mark.parametrize("seed", range(8))
    def test_single_byte_corruption(self, tmp_path, seed):
        """Flipping one payload byte of a checksummed chunk fails strict
        reads; lenient footer-driven reads lose exactly that chunk."""
        rng = random.Random(6000 + seed)
        records = random_records(rng, rng.randrange(50, 400))
        path = tmp_path / "t.bin"
        write_trace_v2(path, records, chunk_size=rng.randrange(5, 50))
        footer = read_trace_footer(path)
        assert footer.chunks

        data = bytearray(path.read_bytes())
        target = rng.randrange(len(footer.chunks))
        offset, damaged_count = footer.chunks[target]
        next_offset = (
            footer.chunks[target + 1][0]
            if target + 1 < len(footer.chunks)
            else len(data) - 1  # at least the footer follows
        )
        # Skip the tag byte and CRC prefix so the section stays
        # structurally a CRC chunk — only its payload is damaged.
        payload_start = offset + 1 + 4
        assert payload_start < next_offset
        victim = rng.randrange(payload_start, next_offset)
        data[victim] ^= 0xFF
        path.write_bytes(bytes(data))

        with pytest.raises(TraceFormatError):
            read_all(path)
        survivors = list(open_trace_chunks(path, lenient=True))
        assert len(survivors) == len(footer.chunks) - 1
        assert sum(len(chunk) for chunk in survivors) == len(records) - damaged_count

    def test_truncated_trailer_detected(self, tmp_path):
        rng = random.Random(77)
        path = tmp_path / "t.bin"
        write_trace_v2(path, random_records(rng, 50), chunk_size=16)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(TraceFormatError):
            read_trace_footer(path)
