"""Merkle Patricia Trie tests: node codecs, structure, and invariants."""

from __future__ import annotations

import hashlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trie import (
    BranchNode,
    ExtensionNode,
    LeafNode,
    NodeBackend,
    PathTrie,
    bytes_to_nibbles,
    decode_node,
    encode_node,
)
from repro.trie.trie import EMPTY_ROOT


class MemBackend(NodeBackend):
    """Dict-backed node store with read counters for cache assertions."""

    def __init__(self):
        self.data = {}
        self.get_calls = 0

    def get(self, path):
        self.get_calls += 1
        return self.data.get(path)

    def peek(self, path):
        return self.data.get(path)

    def put(self, path, blob):
        self.data[path] = blob

    def delete(self, path):
        self.data.pop(path, None)


def key_of(index: int):
    return bytes_to_nibbles(hashlib.sha3_256(b"key%d" % index).digest())


def make_trie():
    backend = MemBackend()
    return PathTrie(backend), backend


class TestNodeCodec:
    def test_leaf_roundtrip(self):
        node = LeafNode(suffix=(1, 2, 3), value=b"payload")
        decoded = decode_node(encode_node(node))
        assert isinstance(decoded, LeafNode)
        assert decoded.suffix == (1, 2, 3) and decoded.value == b"payload"

    def test_extension_roundtrip(self):
        node = ExtensionNode(suffix=(0xA, 0xB), child_hash=b"\x11" * 32)
        decoded = decode_node(encode_node(node))
        assert isinstance(decoded, ExtensionNode)
        assert decoded.suffix == (0xA, 0xB) and decoded.child_hash == b"\x11" * 32

    def test_branch_roundtrip(self):
        node = BranchNode()
        node.children[3] = True
        node.child_hashes[3] = b"\x22" * 32
        node.value = b"terminal"
        decoded = decode_node(encode_node(node))
        assert isinstance(decoded, BranchNode)
        assert decoded.children[3] and not decoded.children[4]
        assert decoded.child_hashes[3] == b"\x22" * 32
        assert decoded.value == b"terminal"

    def test_branch_without_value(self):
        node = BranchNode()
        node.children[0] = True
        node.child_hashes[0] = b"\x01" * 32
        decoded = decode_node(encode_node(node))
        assert decoded.value is None


class TestBasicOperations:
    def test_empty_trie(self):
        trie, _ = make_trie()
        assert trie.get((1, 2)) is None
        assert trie.commit() == EMPTY_ROOT

    def test_single_insert(self):
        trie, backend = make_trie()
        trie.update(key_of(1), b"v1")
        assert trie.get(key_of(1)) == b"v1"
        root = trie.commit()
        assert root != EMPTY_ROOT
        assert len(backend.data) == 1  # a single leaf at the root path

    def test_overwrite(self):
        trie, _ = make_trie()
        trie.update(key_of(1), b"old")
        trie.update(key_of(1), b"new")
        assert trie.get(key_of(1)) == b"new"

    def test_many_inserts_and_gets(self):
        trie, _ = make_trie()
        for i in range(200):
            trie.update(key_of(i), b"value%d" % i)
        trie.commit()
        for i in range(200):
            assert trie.get(key_of(i)) == b"value%d" % i

    def test_get_absent_after_commit(self):
        trie, _ = make_trie()
        trie.update(key_of(1), b"v")
        trie.commit()
        assert trie.get(key_of(999)) is None

    def test_empty_value_rejected(self):
        trie, _ = make_trie()
        with pytest.raises(Exception):
            trie.update(key_of(1), b"")

    def test_contains(self):
        trie, _ = make_trie()
        trie.update(key_of(5), b"v")
        assert key_of(5) in trie
        assert key_of(6) not in trie


class TestDeletion:
    def test_delete_only_key(self):
        trie, backend = make_trie()
        trie.update(key_of(1), b"v")
        trie.commit()
        assert trie.delete(key_of(1))
        assert trie.commit() == EMPTY_ROOT
        assert backend.data == {}

    def test_delete_missing_returns_false(self):
        trie, _ = make_trie()
        trie.update(key_of(1), b"v")
        assert not trie.delete(key_of(2))

    def test_delete_restores_prior_root(self):
        trie, _ = make_trie()
        for i in range(50):
            trie.update(key_of(i), b"v%d" % i)
        root_before = trie.commit()
        trie.update(key_of(999), b"extra")
        trie.commit()
        trie.delete(key_of(999))
        assert trie.commit() == root_before

    def test_delete_all_in_random_order(self):
        trie, backend = make_trie()
        indices = list(range(80))
        for i in indices:
            trie.update(key_of(i), b"v%d" % i)
        trie.commit()
        random.Random(4).shuffle(indices)
        for i in indices:
            assert trie.delete(key_of(i))
        assert trie.commit() == EMPTY_ROOT
        assert backend.data == {}


class TestRootHashInvariants:
    def test_insertion_order_independence(self):
        items = [(key_of(i), b"v%d" % i) for i in range(60)]
        roots = set()
        node_sets = []
        for seed in range(3):
            trie, backend = make_trie()
            shuffled = items[:]
            random.Random(seed).shuffle(shuffled)
            for key, value in shuffled:
                trie.update(key, value)
            roots.add(trie.commit())
            node_sets.append(backend.data)
        assert len(roots) == 1
        assert node_sets[0] == node_sets[1] == node_sets[2]

    def test_incremental_equals_batch(self):
        items = [(key_of(i), b"v%d" % i) for i in range(40)]
        trie_a, _ = make_trie()
        for key, value in items:
            trie_a.update(key, value)
            trie_a.commit()  # commit after every update
        trie_b, _ = make_trie()
        for key, value in items:
            trie_b.update(key, value)
        assert trie_a.commit() == trie_b.commit()

    def test_value_change_changes_root(self):
        trie, _ = make_trie()
        trie.update(key_of(1), b"a")
        root1 = trie.commit()
        trie.update(key_of(1), b"b")
        assert trie.commit() != root1

    def test_deep_update_propagates_to_root(self):
        trie, _ = make_trie()
        for i in range(100):
            trie.update(key_of(i), b"v")
        root1 = trie.commit()
        trie.update(key_of(50), b"changed")
        assert trie.commit() != root1


class TestIteration:
    def test_items_in_key_order(self):
        trie, _ = make_trie()
        expected = {}
        for i in range(30):
            trie.update(key_of(i), b"v%d" % i)
            expected[key_of(i)] = b"v%d" % i
        trie.commit()
        items = list(trie.items())
        assert dict(items) == expected
        keys = [k for k, _ in items]
        assert keys == sorted(keys)

    def test_items_sees_uncommitted(self):
        trie, _ = make_trie()
        trie.update(key_of(1), b"dirty")
        assert dict(trie.items()) == {key_of(1): b"dirty"}


class TestCleanNodeCache:
    def test_repeat_resolution_hits_memory(self):
        trie, backend = make_trie()
        for i in range(50):
            trie.update(key_of(i), b"v")
        trie.commit()
        backend.get_calls = 0
        trie.get(key_of(3))
        first = backend.get_calls
        trie.get(key_of(3))
        assert backend.get_calls == first  # second lookup fully cached

    def test_cache_cleared_at_commit(self):
        trie, backend = make_trie()
        for i in range(50):
            trie.update(key_of(i), b"v")
        trie.commit()
        trie.get(key_of(3))
        trie.update(key_of(7), b"w")
        trie.commit()
        backend.get_calls = 0
        trie.get(key_of(3))
        assert backend.get_calls > 0  # re-read after commit


class TestFuzzAgainstDict:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "commit"]),
                st.integers(min_value=0, max_value=60),
                st.binary(min_size=1, max_size=16),
            ),
            max_size=200,
        )
    )
    def test_random_ops(self, ops):
        trie, backend = make_trie()
        model = {}
        for action, index, value in ops:
            key = key_of(index)
            if action == "put":
                trie.update(key, value)
                model[key] = value
            elif action == "delete":
                assert trie.delete(key) == (key in model)
                model.pop(key, None)
            else:
                trie.commit()
        trie.commit()
        assert dict(trie.items()) == model
        # Rebuild from scratch: same root, same node set.
        trie2, backend2 = make_trie()
        for key, value in model.items():
            trie2.update(key, value)
        assert trie2.commit() == trie.root_hash()
        assert backend2.data == backend.data
