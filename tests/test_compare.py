"""Trace comparison tests."""

from __future__ import annotations

import pytest

from repro.core.classes import KVClass
from repro.core.compare import compare_traces
from repro.core.trace import OpType, TraceRecord


def R(key, op=OpType.READ):
    return TraceRecord(op, key, 10, 0)


TA = b"A\x01"
TXL = b"l" + b"\x01" * 32
SA = b"a" + b"\x02" * 32


class TestCompare:
    def test_identical_traces_zero_distance(self):
        trace = [R(TA), R(TXL, OpType.WRITE)] * 5
        comparison = compare_traces(trace, list(trace), "x", "y")
        assert comparison.total_variation_distance == pytest.approx(0.0)
        assert not comparison.only_in_a and not comparison.only_in_b

    def test_disjoint_classes_max_distance(self):
        comparison = compare_traces([R(TA)] * 4, [R(TXL)] * 4)
        assert comparison.total_variation_distance == pytest.approx(1.0)
        assert comparison.only_in_a == [KVClass.TRIE_NODE_ACCOUNT]
        assert comparison.only_in_b == [KVClass.TX_LOOKUP]

    def test_share_deltas(self):
        a = [R(TA)] * 3 + [R(SA)] * 1  # TA 75%, SA 25%
        b = [R(TA)] * 1 + [R(SA)] * 3  # TA 25%, SA 75%
        comparison = compare_traces(a, b)
        ta = next(d for d in comparison.deltas if d.kv_class is KVClass.TRIE_NODE_ACCOUNT)
        assert ta.share_a == 75.0 and ta.share_b == 25.0
        assert ta.share_delta == -50.0
        assert comparison.total_variation_distance == pytest.approx(0.5)

    def test_mix_shift_detects_op_type_change(self):
        a = [R(TA, OpType.READ)] * 10
        b = [R(TA, OpType.UPDATE)] * 10
        comparison = compare_traces(a, b)
        ta = comparison.deltas[0]
        assert ta.share_delta == 0.0  # same class share...
        assert ta.mix_shift == pytest.approx(1.0)  # ...entirely different ops

    def test_largest_shifts_ordering(self):
        a = [R(TA)] * 8 + [R(SA)] * 1 + [R(TXL)] * 1
        b = [R(TA)] * 1 + [R(SA)] * 8 + [R(TXL)] * 1
        comparison = compare_traces(a, b)
        top = comparison.largest_shifts(2)
        assert {d.kv_class for d in top} == {
            KVClass.TRIE_NODE_ACCOUNT,
            KVClass.SNAPSHOT_ACCOUNT,
        }

    def test_render(self):
        comparison = compare_traces([R(TA)], [R(TXL)], "CacheTrace", "BareTrace")
        rendered = comparison.render()
        assert "CacheTrace" in rendered and "BareTrace" in rendered
        assert "TV distance" in rendered

    def test_prebuilt_analyzers(self):
        from repro.core.opdist import OpDistAnalyzer

        analyzer_a = OpDistAnalyzer(track_keys=False).consume([R(TA)])
        analyzer_b = OpDistAnalyzer(track_keys=False).consume([R(TA)])
        comparison = compare_traces(
            None, None, analyzers=(analyzer_a, analyzer_b)
        )
        assert comparison.total_variation_distance == 0.0


class TestOnRealTraces:
    def test_cache_vs_bare_signature(self, trace_pair):
        cache_result, bare_result = trace_pair
        comparison = compare_traces(
            cache_result.records,
            bare_result.records,
            "CacheTrace",
            "BareTrace",
        )
        # The capture modes differ substantially but share most classes.
        assert 0.05 < comparison.total_variation_distance < 0.8
        # Snapshot classes exist only in CacheTrace.
        assert KVClass.SNAPSHOT_ACCOUNT in comparison.only_in_a
        assert KVClass.SNAPSHOT_STORAGE in comparison.only_in_a
        # The largest share shifts involve the world-state classes.
        top_classes = {d.kv_class for d in comparison.largest_shifts(4)}
        assert top_classes & {
            KVClass.TRIE_NODE_ACCOUNT,
            KVClass.TRIE_NODE_STORAGE,
            KVClass.SNAPSHOT_ACCOUNT,
            KVClass.SNAPSHOT_STORAGE,
        }
