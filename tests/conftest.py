"""Shared fixtures.

The expensive artifact — a CacheTrace/BareTrace pair from a full sync
run — is produced once per session at a small scale and shared by the
integration-level tests (findings, analysis, reports).
"""

from __future__ import annotations

import pytest

from repro.core.analysis import TraceAnalysis
from repro.sync.driver import run_trace_pair
from repro.workload.generator import WorkloadConfig


@pytest.fixture(autouse=True)
def _isolated_aggcache(tmp_path, monkeypatch):
    """Keep the partial-aggregate cache out of the real user cache dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "aggcache"))


@pytest.fixture(autouse=True)
def _isolated_metrics_registry():
    """Give every test a fresh process-wide MetricsRegistry.

    Anything that falls back to ``repro.obs.get_registry()`` — the CLI
    paths, ``--metrics-out`` dumps, default-registry analyzers — would
    otherwise accumulate counters across tests, making results depend
    on execution order.  Swap in a clean registry per test and restore
    the previous one afterwards.
    """
    from repro.obs import set_registry
    from repro.obs.registry import MetricsRegistry

    previous = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(previous)


SMALL_WORKLOAD = WorkloadConfig(
    seed=1234,
    initial_eoa_accounts=1500,
    initial_contracts=250,
    txs_per_block=16,
)


@pytest.fixture(scope="session")
def trace_pair():
    """(cache_result, bare_result) from one small full-sync pair."""
    return run_trace_pair(
        SMALL_WORKLOAD, num_blocks=80, warmup_blocks=40, cache_bytes=128 * 1024
    )


@pytest.fixture(scope="session")
def cache_analysis(trace_pair):
    cache_result, _ = trace_pair
    return TraceAnalysis(
        "CacheTrace",
        cache_result.records,
        cache_result.store_snapshot,
        correlation_distances=(0, 1, 4, 16, 64, 256, 1024),
    )


@pytest.fixture(scope="session")
def bare_analysis(trace_pair):
    _, bare_result = trace_pair
    return TraceAnalysis(
        "BareTrace",
        bare_result.records,
        bare_result.store_snapshot,
        correlation_distances=(0, 1, 4, 16, 64, 256, 1024),
    )
