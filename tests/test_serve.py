"""Trace service tests: protocol, admission, scheduling, streaming.

The integration tests run the real daemon in-process over real TCP
(``tests/serve_utils.py``); anything time-dependent — sleep jobs, rate
buckets, blocked admission — runs on a :class:`VirtualClock`, so
outcomes are decided by the scheduler's rules, never by wall-clock
luck.  The headline acceptance test drives 8 concurrent clients across
3 tenants against one shared trace and checks the paper-facing
contract: streamed partial aggregates end byte-identical to a one-shot
``analyze``, per-tenant quota rejections land in the metrics registry,
and shutdown leaves zero pending asyncio tasks.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.aggcache import analyze_trace_maybe_cached
from repro.core.report import render_op_table
from repro.obs.registry import MetricsRegistry
from repro.serve import ServeClient, TenantQuota
from repro.serve import protocol
from repro.serve.protocol import (
    Accepted,
    Bye,
    Cancel,
    Cancelled,
    ErrorResponse,
    Hello,
    Partial,
    ProtocolError,
    Rejected,
    Result,
    ShutdownRequest,
    StatsRequest,
    StatsResponse,
    Submit,
    Welcome,
)
from repro.serve.scheduler import JobQueue
from repro.serve.jobs import Job

from tests.serve_utils import (
    VirtualClock,
    assert_no_server_tasks,
    connect,
    counter_value,
    make_trace,
    pump,
    run,
    serve_session,
)


# ---------------------------------------------------------------------------
# protocol round-trips
# ---------------------------------------------------------------------------


class TestProtocol:
    REQUESTS = [
        Hello(tenant="alice"),
        Submit(id="j1", kind="analyze", params={"trace": "t"}, priority=3),
        Cancel(id="j1"),
        StatsRequest(),
        ShutdownRequest(mode="cancel"),
    ]
    RESPONSES = [
        Welcome(),
        Accepted(id="j1", job=7),
        Rejected(id="j1", reason="quota", detail="full"),
        Partial(id="j1", seq=1, data={"records": 10}),
        Result(id="j1", data={"records": 10}),
        ErrorResponse(message="boom", id="j1"),
        Cancelled(id="j1"),
        StatsResponse(data={"families": []}),
        Bye(reason="shutdown"),
    ]

    @pytest.mark.parametrize("message", REQUESTS, ids=lambda m: m.TYPE)
    def test_request_round_trip(self, message):
        line = protocol.encode_message(message)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert protocol.decode_request(line) == message

    @pytest.mark.parametrize("message", RESPONSES, ids=lambda m: m.TYPE)
    def test_response_round_trip(self, message):
        assert protocol.decode_response(protocol.encode_message(message)) == message

    def test_wire_is_one_json_object_with_type_tag(self):
        payload = json.loads(protocol.encode_message(Hello(tenant="a")))
        assert payload["type"] == "hello"
        assert payload["proto"] == protocol.PROTOCOL_VERSION

    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"[1,2]\n",
            b'{"type":"nope"}\n',
            b'{"type":"hello","tenant":"a","extra":1}\n',
            b'{"type":"submit"}\n',  # missing required fields
        ],
    )
    def test_bad_requests_raise(self, line):
        with pytest.raises(ProtocolError):
            protocol.decode_request(line)

    def test_request_response_registries_are_disjoint_where_it_matters(self):
        # "stats" is a request AND a response tag; each side decodes its own.
        assert isinstance(protocol.decode_request(b'{"type":"stats"}\n'), StatsRequest)
        assert isinstance(
            protocol.decode_response(b'{"type":"stats","data":{}}\n'), StatsResponse
        )

    def test_check_hello(self):
        with pytest.raises(ProtocolError, match="protocol mismatch"):
            protocol.check_hello(Hello(tenant="a", proto="serve-v0"))
        with pytest.raises(ProtocolError, match="tenant"):
            protocol.check_hello(Hello(tenant=""))
        with pytest.raises(ProtocolError, match="expected hello"):
            protocol.check_hello(StatsRequest())

    def test_check_submit(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            protocol.check_submit(Submit(id="x", kind="mine"))
        with pytest.raises(ProtocolError, match="non-empty id"):
            protocol.check_submit(Submit(id="", kind="sleep"))

    def test_terminal_types(self):
        assert protocol.TERMINAL_TYPES == {"rejected", "result", "error", "cancelled"}


# ---------------------------------------------------------------------------
# scheduler unit tests (virtual clock; no sockets)
# ---------------------------------------------------------------------------


def _job(job_id, tenant="t", priority=0):
    return Job(
        job_id=job_id,
        client_id=f"c{job_id}",
        tenant=tenant,
        kind="sleep",
        params={},
        priority=priority,
        conn=None,
    )


class TestJobQueue:
    def test_priority_order_at_equal_time(self):
        async def body():
            clock = VirtualClock()
            queue = JobQueue(aging_seconds=10.0, clock=clock, max_running=lambda t: 99)
            await queue.push(_job(1, priority=5))
            await queue.push(_job(2, priority=0))
            await queue.push(_job(3, priority=5))
            assert (await queue.pop()).job_id == 2
            # FIFO among equals
            assert (await queue.pop()).job_id == 1
            assert (await queue.pop()).job_id == 3

        run(body())

    def test_aging_lets_old_low_priority_beat_fresh_high_priority(self):
        async def body():
            clock = VirtualClock()
            queue = JobQueue(aging_seconds=10.0, clock=clock, max_running=lambda t: 99)
            await queue.push(_job(1, priority=5))  # key = 50 + t0
            clock.advance(100.0)
            await queue.push(_job(2, priority=0))  # key = 0 + t0+100
            old_first = await queue.pop()
            assert old_first.job_id == 1  # waited out its handicap

        run(body())

    def test_saturated_tenant_defers_without_losing_place(self):
        async def body():
            clock = VirtualClock()
            queue = JobQueue(aging_seconds=10.0, clock=clock, max_running=lambda t: 1)
            await queue.push(_job(1, tenant="a", priority=0))
            await queue.push(_job(2, tenant="a", priority=0))
            await queue.push(_job(3, tenant="b", priority=5))
            first = await queue.pop()
            assert first.job_id == 1
            # tenant a is saturated: its second job defers, b runs
            second = await queue.pop()
            assert second.job_id == 3
            await queue.task_done(first)
            third = await queue.pop()
            assert third.job_id == 2
            await queue.task_done(second)
            await queue.task_done(third)
            await queue.close()
            assert await queue.pop() is None

        run(body())

    def test_cancelled_jobs_are_dropped_lazily(self):
        async def body():
            clock = VirtualClock()
            queue = JobQueue(aging_seconds=10.0, clock=clock, max_running=lambda t: 9)
            dropped = []
            victim = _job(1, priority=0)
            victim.on_dropped = dropped.append
            await queue.push(victim)
            await queue.push(_job(2, priority=1))
            victim.cancelled = True
            assert (await queue.pop()).job_id == 2
            assert [j.job_id for j in dropped] == [1]
            assert queue.queued == 0

        run(body())


# ---------------------------------------------------------------------------
# integration: the in-process daemon over real TCP
# ---------------------------------------------------------------------------


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "trace.bin"
    make_trace(path, n=2000, seed=11, chunk_size=173)
    return path


def _one_shot_table(trace_path, name):
    opdist = analyze_trace_maybe_cached(
        str(trace_path), cache=None, workers=1, analyzers=("opdist",)
    )["opdist"]
    return render_op_table(opdist, f"Operation distribution ({name})")


class TestServeIntegration:
    def test_stream_matches_one_shot_analyze(self, trace_path):
        expected = _one_shot_table(trace_path, "shared")

        async def body():
            async with serve_session({"shared": trace_path}) as (server, port):
                async with connect(port, "alice") as client:
                    handle = await client.run(
                        "analyze", {"trace": "shared", "batch_chunks": 3}
                    )
                    assert handle.status == "result"
                    assert handle.result["table"] == expected
                    assert handle.result["records"] == 2000
                    # streamed partials grow monotonically to completion
                    assert len(handle.partials) >= 2
                    chunks = [p["chunks_done"] for p in handle.partials]
                    assert chunks == sorted(chunks)
                    assert handle.partials[-1]["chunks_done"] == (
                        handle.partials[-1]["total_chunks"]
                    )
                    assert handle.partials[-1]["records"] == 2000

        run(body())

    def test_eight_clients_three_tenants_shared_trace(self, trace_path):
        """The acceptance scenario: 8 concurrent clients, 3 tenants,
        one shared trace; every job completes, streamed aggregates are
        byte-identical to one-shot analyze, quota rejections are
        observable, and shutdown leaves zero pending tasks."""
        expected = _one_shot_table(trace_path, "shared")
        registry = MetricsRegistry()

        async def body():
            tenants = ["t0", "t1", "t2"]
            async with serve_session(
                {"shared": trace_path},
                registry=registry,
                workers=3,
                quota=TenantQuota(max_pending=1, max_running=1, admission="drop"),
                tenant_quotas={
                    t: TenantQuota(max_pending=8, max_running=2) for t in tenants
                },
            ) as (server, port):
                clients = []
                for i in range(8):
                    client = ServeClient("127.0.0.1", port, tenants[i % 3])
                    clients.append(await client.connect())
                try:
                    handles = [
                        await c.submit(
                            "analyze",
                            {"trace": "shared", "batch_chunks": 2 + i % 3},
                            priority=i % 2,
                        )
                        for i, c in enumerate(clients)
                    ]
                    await asyncio.gather(*(h.wait() for h in handles))
                    for handle in handles:
                        assert handle.status == "result"
                        assert handle.result["table"] == expected
                    # an over-quota tenant (the default quota) is rejected
                    # and the rejection lands in the per-tenant metrics
                    async with connect(port, "greedy") as greedy:
                        a = await greedy.submit("sleep", {"seconds": 5})
                        b = await greedy.run("sleep", {"seconds": 5})
                        assert b.status == "rejected"
                        assert b.terminal.reason == "quota"
                        await greedy.cancel(a.id)
                        await a.wait()
                finally:
                    for client in clients:
                        await client.close()
                assert (
                    counter_value(
                        registry,
                        "repro_serve_jobs_rejected_total",
                        tenant="greedy",
                        reason="quota",
                    )
                    == 1.0
                )
                for tenant in tenants:
                    done = counter_value(
                        registry,
                        "repro_serve_jobs_completed_total",
                        tenant=tenant,
                        kind="analyze",
                    )
                    assert done >= 2.0  # 8 jobs over 3 tenants

        run(body())
        # the session context already asserted zero pending tasks

    def test_rate_quota_with_virtual_clock(self, trace_path):
        clock = VirtualClock()
        registry = MetricsRegistry()

        async def body():
            async with serve_session(
                {"shared": trace_path},
                registry=registry,
                clock=clock,
                sleep=clock.sleep,
                quota=TenantQuota(rate=1.0, burst=1.0, admission="drop"),
            ) as (server, port):
                async with connect(port, "alice") as client:
                    first = await client.run("sleep", {"seconds": 0})
                    assert first.status == "result"
                    second = await client.run("sleep", {"seconds": 0})
                    assert second.status == "rejected"
                    assert second.terminal.reason == "rate"
                    clock.advance(1.5)  # refill the bucket
                    third = await client.run("sleep", {"seconds": 0})
                    assert third.status == "result"
            assert (
                counter_value(
                    registry,
                    "repro_serve_jobs_rejected_total",
                    tenant="alice",
                    reason="rate",
                )
                == 1.0
            )

        run(body())

    def test_block_admission_backpressures_until_capacity(self, trace_path):
        """``block``: an over-quota submit neither fails nor drops — it
        waits (pausing that connection) and admits once a slot frees."""
        clock = VirtualClock()

        async def body():
            async with serve_session(
                {"shared": trace_path},
                clock=clock,
                sleep=clock.sleep,
                workers=1,
                quota=TenantQuota(max_pending=1, max_running=1, admission="block"),
            ) as (server, port):
                async with connect(port, "alice") as client:
                    blocker = await client.submit("sleep", {"seconds": 10})
                    await pump(clock, step=0.0, until=lambda: blocker.accepted)
                    queued = await client.submit("sleep", {"seconds": 0})
                    # over quota: no verdict arrives while the blocker runs
                    await pump(clock, step=0.0, rounds=20)
                    assert queued.accepted is None
                    # finish the blocker -> the blocked submit admits
                    ok = await pump(
                        clock, step=1.0, until=lambda: queued.done.is_set()
                    )
                    assert ok
                    assert blocker.status == "result"
                    assert queued.status == "result"

        run(body())

    def test_abort_admission_closes_connection(self, trace_path):
        async def body():
            async with serve_session(
                {"shared": trace_path},
                workers=1,
                quota=TenantQuota(max_pending=1, max_running=1, admission="abort"),
            ) as (server, port):
                client = ServeClient("127.0.0.1", port, "rude")
                await client.connect()
                try:
                    blocker = await client.submit("sleep", {"seconds": 0.05})
                    over = await client.submit("sleep", {"seconds": 0})
                    await over.wait()
                    assert over.status == "error"
                    await blocker.wait()  # resolved by close or completion
                finally:
                    await client.close()

        run(body())

    def test_cancel_queued_and_running_jobs(self, trace_path):
        clock = VirtualClock()

        async def body():
            async with serve_session(
                {"shared": trace_path},
                clock=clock,
                sleep=clock.sleep,
                workers=1,
                quota=TenantQuota(max_pending=10, max_running=1),
            ) as (server, port):
                async with connect(port, "alice") as client:
                    running = await client.submit("sleep", {"seconds": 30})
                    queued = await client.submit("sleep", {"seconds": 30})
                    await pump(clock, step=0.0, until=lambda: queued.accepted)
                    await client.cancel(queued.id)
                    await queued.wait()
                    assert queued.status == "cancelled"
                    await client.cancel(running.id)
                    await running.wait()
                    assert running.status == "cancelled"
                    # the freed slot still serves new work
                    after = await client.run("sleep", {"seconds": 0})
                    assert after.status == "result"

        run(body())

    def test_shutdown_cancel_answers_everything(self, trace_path):
        clock = VirtualClock()

        async def body():
            async with serve_session(
                {"shared": trace_path},
                clock=clock,
                sleep=clock.sleep,
                workers=1,
                quota=TenantQuota(max_pending=10, max_running=1),
            ) as (server, port):
                async with connect(port, "alice") as client:
                    handles = [
                        await client.submit("sleep", {"seconds": 60}) for _ in range(3)
                    ]
                    await pump(
                        clock,
                        step=0.0,
                        until=lambda: all(h.accepted for h in handles),
                    )
                    await server.shutdown("cancel")
                    for handle in handles:
                        await handle.wait()
                        # running + queued all get a terminal answer
                        assert handle.status in ("cancelled", "error")
                    assert [h.status for h in handles].count("cancelled") >= 1
                assert_no_server_tasks(server)

        run(body())

    def test_error_paths_over_the_wire(self, trace_path):
        async def body():
            async with serve_session({"shared": trace_path}) as (server, port):
                # bad handshake: wrong protocol version
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(
                    protocol.encode_message(Hello(tenant="x", proto="serve-v0"))
                )
                await writer.drain()
                reply = protocol.decode_response(await reader.readline())
                assert isinstance(reply, ErrorResponse)
                writer.close()
                await writer.wait_closed()

                async with connect(port, "alice") as client:
                    # unknown trace -> job-level error terminal
                    missing = await client.run("analyze", {"trace": "nope"})
                    assert missing.status == "error"
                    assert "unknown trace" in missing.terminal.message
                    # unknown job kind -> rejected (bad-request)
                    bad_kind = await client.submit("bogus", {})
                    await bad_kind.wait()
                    assert bad_kind.status == "rejected"
                    assert bad_kind.terminal.reason == "bad-request"
                    # malformed params -> error terminal, connection lives
                    bad_params = await client.run("sleep", {"seconds": "NaNcy"})
                    assert bad_params.status == "error"
                    # duplicate job id -> rejected
                    dup = await client.run("sleep", {}, )
                    assert dup.status == "result"
                    reuse = await client.submit("sleep", {}, job_id=dup.id)
                    await reuse.wait()
                    assert reuse.status == "rejected"
                    assert reuse.terminal.reason == "bad-request"
                    # the connection still works after every error above
                    final = await client.run("sleep", {})
                    assert final.status == "result"

        run(body())

    def test_replay_and_crashtest_jobs(self, trace_path):
        async def body():
            async with serve_session({"shared": trace_path}) as (server, port):
                async with connect(port, "alice") as client:
                    replay = await client.run(
                        "replay", {"trace": "shared", "backend": "memdb"}
                    )
                    assert replay.status == "result"
                    assert replay.result["records"] == 2000
                    assert "memdb" in replay.result["report"]
                    bad = await client.run(
                        "replay", {"trace": "shared", "pace": -1}
                    )
                    assert bad.status == "error"
                    crash = await client.run(
                        "crashtest", {"blocks": 8, "warmup": 2, "seed": 3}
                    )
                    assert crash.status == "result"
                    assert crash.result["total"] >= 1

        run(body())

    def test_stats_request_merges_with_client_metrics(self, trace_path, tmp_path):
        """`repro stats` merges a server snapshot with a client-side
        ``--metrics-out`` dump: same format, associative merge."""
        registry = MetricsRegistry()

        async def body():
            async with serve_session(
                {"shared": trace_path}, registry=registry
            ) as (server, port):
                async with connect(port, "alice") as client:
                    await client.run("analyze", {"trace": "shared"})
                    return await client.stats()

        server_stats = run(body())
        server_json = tmp_path / "server.json"
        server_json.write_text(json.dumps(server_stats), encoding="utf-8")

        # a client-side analyze of the same trace, dumped via the CLI
        from repro.cli import main as cli_main

        client_json = tmp_path / "client.json"
        assert (
            cli_main(
                [
                    "analyze",
                    str(trace_path),
                    "--no-cache",
                    "--metrics-out",
                    str(client_json),
                ]
            )
            == 0
        )

        from repro.obs.export import read_snapshot_json
        from repro.obs.registry import merge_snapshots

        merged = merge_snapshots(
            [read_snapshot_json(server_json), read_snapshot_json(client_json)]
        )
        families = merged.families
        assert "repro_serve_jobs_completed_total" in families
        # both sides analyzed the trace once -> chunk counters add up
        server_chunks = read_snapshot_json(server_json).families[
            "repro_analysis_chunks_total"
        ]
        merged_chunks = families["repro_analysis_chunks_total"]
        assert sum(merged_chunks.series.values()) == 2 * sum(
            server_chunks.series.values()
        )

    def test_stats_cli_renders_merged_snapshots(self, trace_path, tmp_path, capsys):
        registry = MetricsRegistry()

        async def body():
            async with serve_session(
                {"shared": trace_path}, registry=registry
            ) as (server, port):
                async with connect(port, "alice") as client:
                    await client.run("sleep", {})
                    return await client.stats()

        stats = run(body())
        dump = tmp_path / "server.json"
        dump.write_text(json.dumps(stats), encoding="utf-8")
        from repro.cli import main as cli_main

        assert cli_main(["stats", str(dump), str(dump)]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_jobs_completed_total" in out
        assert 'tenant="alice"' in out


# ---------------------------------------------------------------------------
# regressions: quota-slot lifecycle and cancellation unwinding
# ---------------------------------------------------------------------------


class TestSlotLifecycleRegressions:
    """Each test pins a specific once-broken slot/cancel interaction.

    The invariant under test: a tenant's ``max_pending`` slots are a
    *renewable* resource — every admitted job gives its slot back on
    exactly one terminal path (result, error, cancel, disconnect,
    shutdown), no matter which observers race over the same job.
    """

    def test_disconnect_with_queued_jobs_releases_quota_slots(self, trace_path):
        """A client vanishing with jobs still queued must not consume
        the tenant's pending slots forever (the tenant shares quota
        state across connections, so a leak here is a permanent
        lockout once ``max_pending`` disconnects accumulate)."""
        clock = VirtualClock()

        async def body():
            async with serve_session(
                {"shared": trace_path},
                clock=clock,
                sleep=clock.sleep,
                workers=1,
                quota=TenantQuota(max_pending=2, max_running=1, admission="drop"),
            ) as (server, port):
                client = ServeClient("127.0.0.1", port, "alice")
                await client.connect()
                running = await client.submit("sleep", {"seconds": 60})
                queued = await client.submit("sleep", {"seconds": 60})
                await pump(
                    clock,
                    step=0.0,
                    until=lambda: running.accepted and queued.accepted,
                )
                # Abrupt disconnect: one job running, one still queued.
                await client.close()
                state = server._quotas.tenant("alice")
                assert await pump(
                    clock, step=0.0, until=lambda: state.pending == 0
                ), f"leaked pending slots: {state.pending}"

                # The tenant must get its full quota back: a fresh
                # connection can fill max_pending again, repeatedly.
                async with connect(port, "alice") as retry:
                    for _ in range(3):
                        first = await retry.submit("sleep", {"seconds": 0})
                        second = await retry.submit("sleep", {"seconds": 0})
                        await first.wait()
                        await second.wait()
                        assert first.status == "result"
                        assert second.status == "result"

        run(body())

    def test_cancel_then_lazy_drop_releases_slot_exactly_once(self, trace_path):
        """A queued job cancelled by the client is answered eagerly but
        discarded by the scheduler lazily; the two paths touch the same
        job and must release its pending slot once, not twice."""
        clock = VirtualClock()

        async def body():
            async with serve_session(
                {"shared": trace_path},
                clock=clock,
                sleep=clock.sleep,
                workers=1,
                quota=TenantQuota(max_pending=4, max_running=1),
            ) as (server, port):
                async with connect(port, "alice") as client:
                    blocker = await client.submit("sleep", {"seconds": 60})
                    queued = await client.submit("sleep", {"seconds": 60})
                    tail = await client.submit("sleep", {"seconds": 0})
                    await pump(clock, step=0.0, until=lambda: tail.accepted)
                    await client.cancel(queued.id)
                    await queued.wait()
                    assert queued.status == "cancelled"
                    state = server._quotas.tenant("alice")
                    # cancelled job released its slot; blocker + tail remain
                    assert await pump(
                        clock, step=0.0, until=lambda: state.pending == 2
                    ), f"pending={state.pending}, want 2"
                    # let the worker reach (and lazily discard) the
                    # cancelled heap entry, then finish the tail job
                    await client.cancel(blocker.id)
                    await blocker.wait()
                    await tail.wait()
                    assert tail.status == "result"
                    # exactly-once: no double release snuck pending below 0
                    assert await pump(
                        clock, step=0.0, until=lambda: state.pending == 0
                    )
                    assert state.admitted == 3

        run(body())

    def test_cancel_running_analyze_is_cancelled_not_internal_error(
        self, trace_path
    ):
        """Cancelling an analyze mid-stream lands while ``next(stream)``
        runs on the pool thread; the unwind must wait the step out and
        answer ``cancelled`` — not trip over the executing generator
        and report an internal error."""

        async def body():
            async with serve_session(
                {"shared": trace_path}, workers=1
            ) as (server, port):
                async with connect(port, "alice") as client:
                    for _ in range(4):
                        handle = await client.submit(
                            "analyze", {"trace": "shared", "batch_chunks": 1}
                        )
                        await pump(until=lambda: handle.accepted)
                        await client.cancel(handle.id)
                        await handle.wait()
                        assert handle.status == "cancelled", handle.error
                    family = server.registry.snapshot().families.get(
                        "repro_serve_jobs_failed_total"
                    )
                    failed = {
                        labels: value
                        for labels, value in (family.series if family else {}).items()
                        if value
                    }
                    assert not failed, f"cancellations reported as failures: {failed}"

        run(body())

    def test_shutdown_cancel_after_client_cancel_keeps_counters_clean(
        self, trace_path
    ):
        """shutdown('cancel') overlapping an in-flight client cancel
        must not deliver a second cancellation mid-unwind: afterwards
        the queue counters read empty and no worker task leaks."""
        clock = VirtualClock()

        async def body():
            async with serve_session(
                {"shared": trace_path},
                clock=clock,
                sleep=clock.sleep,
                workers=2,
                quota=TenantQuota(max_pending=10, max_running=2),
            ) as (server, port):
                async with connect(port, "alice") as client:
                    handles = [
                        await client.submit("sleep", {"seconds": 60})
                        for _ in range(4)
                    ]
                    await pump(
                        clock,
                        step=0.0,
                        until=lambda: all(h.accepted for h in handles),
                    )
                    # client cancel racing the server-side shutdown cancel
                    await client.cancel(handles[0].id)
                    await server.shutdown("cancel")
                    for handle in handles:
                        await handle.wait()
                        assert handle.status in ("cancelled", "error")
                assert server._queue.active == 0
                assert server._queue.queued == 0
                assert_no_server_tasks(server)

        run(body())
