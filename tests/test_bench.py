"""Benchmark harness tests.

Covers the registry/decorator contract, the robust statistics, the
calibrated runner (including obs metric-delta capture), the
``bench-result-v1`` schema round trip, the noise-aware comparator —
in particular that a confirmed synthetic regression is flagged while
an equal-magnitude but noisy delta is not — and the ``repro bench``
CLI verbs' exit codes (0 pass / 1 confirmed regression / 2 bad
input).
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchContext,
    BenchmarkRegistry,
    BenchmarkSpec,
    RunnerConfig,
    RunResult,
    Workload,
    benchmark,
    bootstrap_ci,
    compare_results,
    load_default_suite,
    mad,
    median,
    read_result_json,
    render_result,
    render_trajectory,
    run_benchmark,
    run_suite,
    summarize,
    write_result_json,
)
from repro.bench.schema import BenchmarkResult
from repro.bench.stats import SummaryStats
from repro.cli import main


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


class TestStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        # median 3, deviations [2, 1, 0, 1, 2] -> MAD 1
        assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0
        assert mad([7.0, 7.0, 7.0]) == 0.0

    def test_bootstrap_ci_deterministic_and_ordered(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.2, 0.8]
        low1, high1 = bootstrap_ci(values, seed=42)
        low2, high2 = bootstrap_ci(values, seed=42)
        assert (low1, high1) == (low2, high2)
        assert low1 <= median(values) <= high1

    def test_bootstrap_single_sample_collapses(self):
        assert bootstrap_ci([2.5]) == (2.5, 2.5)

    def test_ci_narrows_with_less_spread(self):
        tight = summarize([1.0, 1.01, 0.99, 1.0, 1.0])
        loose = summarize([1.0, 2.0, 0.5, 1.5, 0.7])
        assert (tight.ci_high - tight.ci_low) < (loose.ci_high - loose.ci_low)

    def test_summarize_fields(self):
        stats = summarize([2.0, 1.0, 3.0])
        assert stats.n == 3
        assert stats.median == 2.0
        assert stats.min == 1.0 and stats.max == 3.0
        assert stats.mean == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_decorator_registers_and_selects(self):
        registry = BenchmarkRegistry()

        @benchmark(group="g1", registry=registry)
        def alpha(ctx):
            return Workload(run=lambda: 1)

        @benchmark(name="beta2", group="g2", slow=True, registry=registry)
        def beta(ctx):
            return Workload(run=lambda: 2)

        assert registry.names() == ["alpha", "beta2"]
        assert [s.name for s in registry.select()] == ["alpha"]  # slow excluded
        assert [s.name for s in registry.select(include_slow=True)] == [
            "alpha",
            "beta2",
        ]
        assert [s.name for s in registry.select("g2/*", include_slow=True)] == ["beta2"]
        assert [s.name for s in registry.select("alph")] == ["alpha"]  # substring

    def test_duplicate_name_rejected(self):
        registry = BenchmarkRegistry()
        registry.register(BenchmarkSpec("dup", lambda ctx: Workload(run=lambda: 0)))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(
                BenchmarkSpec("dup", lambda ctx: Workload(run=lambda: 0))
            )

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            BenchmarkRegistry().get("nope")

    def test_default_suite_has_migrated_benchmarks(self):
        registry = load_default_suite()
        names = set(registry.names())
        # the analyzer-throughput, parallel-scaling, and ablation
        # migrations the perf-gate runs
        assert {
            "opdist_reference",
            "opdist_columnar",
            "serialization_v1",
            "serialization_v2",
            "blockstats_columnar",
            "parallel_workers1",
            "parallel_workers2",
            "ablation_hybrid_store",
            "ablation_correlation_cache",
            "ablation_colocation",
        } <= names
        assert len(registry.select()) >= 5


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


def _spec(name, workload_fn, **kwargs):
    return BenchmarkSpec(name=name, setup=workload_fn, **kwargs)


class TestRunner:
    def test_runner_records_times_and_rate(self):
        spec = _spec("tiny", lambda ctx: Workload(run=lambda: 7, ops=100))
        config = RunnerConfig(repeats=3, warmup=1, min_time=0.0)
        with BenchContext("smoke") as ctx:
            result = run_benchmark(spec, ctx, config)
        assert result.repeats == 3 and len(result.times) == 3
        assert result.loops >= 1
        assert result.ops == 100
        assert result.rate == pytest.approx(100 / result.stats.median)
        assert all(t >= 0 for t in result.times)

    def test_calibration_raises_loops_for_fast_kernels(self):
        spec = _spec("fast", lambda ctx: Workload(run=lambda: None))
        config = RunnerConfig(repeats=2, warmup=0, min_time=0.005, max_loops=100_000)
        with BenchContext("smoke") as ctx:
            result = run_benchmark(spec, ctx, config)
        assert result.loops > 1  # a no-op body cannot span 5ms in one loop

    def test_check_failure_aborts_before_timing(self):
        def setup(ctx):
            def boom(value):
                raise AssertionError("wrong result")

            return Workload(run=lambda: 3, check=boom)

        with BenchContext("smoke") as ctx:
            with pytest.raises(AssertionError, match="wrong result"):
                run_benchmark(_spec("broken", setup), ctx, RunnerConfig(repeats=1))

    def test_metric_deltas_attributed_per_iteration(self):
        from repro.obs import get_registry

        def setup(ctx):
            def run():
                get_registry().counter("bench_test_events_total").inc(3)
                return 1

            return Workload(run=run)

        config = RunnerConfig(repeats=2, warmup=1, min_time=0.0)
        with BenchContext("smoke") as ctx:
            result = run_benchmark(_spec("counted", setup), ctx, config)
        # 3 increments per iteration regardless of loops/warmup
        assert result.metrics["bench_test_events_total"] == pytest.approx(3.0)

    def test_run_suite_collects_all(self):
        specs = [
            _spec("a", lambda ctx: Workload(run=lambda: 1), group="g"),
            _spec("b", lambda ctx: Workload(run=lambda: 2), group="g"),
        ]
        seen = []
        with BenchContext("smoke") as ctx:
            result = run_suite(
                specs,
                ctx,
                RunnerConfig(repeats=2, min_time=0.0),
                progress=lambda spec, res: seen.append(spec.name),
            )
        assert set(result.benchmarks) == {"a", "b"}
        assert seen == ["a", "b"]
        assert result.profile == "smoke"
        assert result.runner["repeats"] == 2

    def test_invalid_runner_config(self):
        with pytest.raises(ValueError):
            RunnerConfig(repeats=0)


# ---------------------------------------------------------------------------
# schema round trip
# ---------------------------------------------------------------------------


def _synthetic_result(times, *, name="synth", profile="quick", seed=5, **bench_kwargs):
    stats = summarize(times)
    bench = BenchmarkResult(
        name=name,
        group="test",
        loops=2,
        repeats=len(times),
        warmup=1,
        times=tuple(times),
        stats=stats,
        **bench_kwargs,
    )
    return RunResult(
        profile=profile,
        seed=seed,
        benchmarks={name: bench},
        created_unix=1754500000.0,
        env={"python": "3.11"},
        runner={"repeats": len(times)},
    )


class TestSchema:
    def test_round_trip_identity(self, tmp_path):
        result = _synthetic_result(
            [0.1, 0.11, 0.09], ops=1000, rate=10_000.0, metrics={"x_total": 2.0}
        )
        path = tmp_path / "result.json"
        write_result_json(path, result)
        loaded = read_result_json(path)
        assert loaded.to_json() == result.to_json()
        assert loaded.benchmarks["synth"].stats.median == pytest.approx(0.1)
        assert loaded.benchmarks["synth"].metrics == {"x_total": 2.0}

    def test_format_tag_required(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "bench-result-v2", "benchmarks": {}}))
        with pytest.raises(ValueError, match="bench-result-v1"):
            read_result_json(path)

    def test_invalid_json_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_result_json(path)

    def test_inconsistent_stats_rejected(self):
        result = _synthetic_result([0.1, 0.2, 0.3])
        data = result.to_json()
        data["benchmarks"]["synth"]["times"] = [0.1]  # stats.n says 3
        with pytest.raises(ValueError, match="stats.n"):
            RunResult.from_json(data)

    def test_missing_times_rejected(self):
        result = _synthetic_result([0.1, 0.2])
        data = result.to_json()
        del data["benchmarks"]["synth"]["times"]
        with pytest.raises(ValueError, match="malformed entry"):
            RunResult.from_json(data)


# ---------------------------------------------------------------------------
# comparator
# ---------------------------------------------------------------------------


def _result_with(times, **kwargs):
    return _synthetic_result(times, **kwargs)


class TestCompare:
    def test_reproduced_run_passes(self):
        base = _result_with([1.0, 1.01, 0.99, 1.0, 1.02])
        cand = _result_with([1.01, 1.0, 0.98, 1.02, 1.0])
        report = compare_results(base, cand, threshold_pct=25.0)
        assert not report.regressed
        assert report.deltas[0].status == "ok"

    def test_confirmed_regression_flagged(self):
        # 2x slowdown with tight spread: intervals separate cleanly
        base = _result_with([1.0, 1.01, 0.99, 1.0, 1.02])
        cand = _result_with([2.0, 2.02, 1.98, 2.0, 2.04])
        report = compare_results(base, cand, threshold_pct=25.0)
        assert report.regressed
        (delta,) = report.regressions
        assert delta.name == "synth"
        assert delta.delta_pct == pytest.approx(100.0, abs=5.0)
        assert delta.ci_separated
        assert "FAIL" in report.render()

    def test_equal_magnitude_noisy_delta_not_flagged(self):
        """A +100% median shift whose samples scatter across the
        baseline's range is 'suspect', never a confirmed regression."""
        base = _result_with([1.0, 1.1, 0.9, 1.05, 0.95])
        # median 2.0 (+100%) but samples swing from 0.5 to 40: the
        # bootstrap interval overlaps the baseline's
        cand = _result_with([0.5, 0.8, 2.0, 30.0, 40.0])
        report = compare_results(base, cand, threshold_pct=25.0)
        assert not report.regressed
        (delta,) = report.deltas
        assert delta.status == "suspect"
        assert delta.delta_pct > 25.0
        assert not delta.ci_separated

    def test_improvement_reported_not_failed(self):
        base = _result_with([2.0, 2.02, 1.98, 2.0, 2.04])
        cand = _result_with([1.0, 1.01, 0.99, 1.0, 1.02])
        report = compare_results(base, cand)
        assert not report.regressed
        assert report.deltas[0].status == "improvement"

    def test_new_and_missing_benchmarks(self):
        base = _result_with([1.0, 1.0, 1.0], name="old_bench")
        cand = _result_with([1.0, 1.0, 1.0], name="new_bench")
        report = compare_results(base, cand)
        statuses = {delta.name: delta.status for delta in report.deltas}
        assert statuses == {"old_bench": "missing", "new_bench": "new"}
        assert not report.regressed

    def test_profile_mismatch_rejected(self):
        base = _result_with([1.0, 1.0], profile="quick")
        cand = _result_with([1.0, 1.0], profile="full")
        with pytest.raises(ValueError, match="profile mismatch"):
            compare_results(base, cand)


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------


class TestReport:
    def test_render_result_ascii_and_md(self):
        result = _synthetic_result([0.1, 0.11, 0.09], ops=500, rate=5000.0)
        ascii_table = render_result(result)
        assert "synth" in ascii_table and "profile=quick" in ascii_table
        md_table = render_result(result, fmt="md")
        assert md_table.splitlines()[2].startswith("| ---")

    def test_render_trajectory_orders_and_deltas(self):
        old = _synthetic_result([1.0, 1.0, 1.0])
        new = _synthetic_result([2.0, 2.0, 2.0])
        new = RunResult(
            profile=new.profile,
            seed=new.seed,
            benchmarks=new.benchmarks,
            created_unix=old.created_unix + 3600,
            env=new.env,
            runner=new.runner,
        )
        table = render_trajectory([new, old])  # order-insensitive input
        assert "+100.0%" in table
        assert "2 run(s)" in table

    def test_render_trajectory_rejects_mixed_profiles(self):
        with pytest.raises(ValueError, match="mixes profiles"):
            render_trajectory(
                [
                    _synthetic_result([1.0, 1.0], profile="quick"),
                    _synthetic_result([1.0, 1.0], profile="full"),
                ]
            )


# ---------------------------------------------------------------------------
# CLI exit codes (0 pass / 1 confirmed regression / 2 bad input)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    """One real ``repro bench run`` over fast suite benchmarks."""
    out = tmp_path_factory.mktemp("bench-cli") / "smoke.json"
    code = main(
        [
            "bench",
            "run",
            "--profile",
            "smoke",
            "--filter",
            "analyzer/*",
            "--repeats",
            "3",
            "--min-time",
            "0.005",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    return out


class TestBenchCLI:
    def test_run_executes_migrated_suite_and_emits_schema(self, smoke_run):
        result = read_result_json(smoke_run)  # schema-validates
        assert result.profile == "smoke"
        # acceptance: >= 5 migrated benchmarks executed in one run
        assert len(result.benchmarks) >= 5
        for bench in result.benchmarks.values():
            assert bench.stats.ci_low <= bench.stats.median <= bench.stats.ci_high

    def test_run_list_exits_zero(self, capsys):
        assert main(["bench", "run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "analyzer/opdist_columnar" in out

    def test_run_bad_filter_exits_2(self):
        assert main(["bench", "run", "--filter", "no_such_bench"]) == 2

    def test_run_bad_profile_exits_2(self):
        assert main(["bench", "run", "--profile", "galactic"]) == 2

    def test_compare_reproduced_baseline_exits_0(self, smoke_run, tmp_path):
        assert main(["bench", "compare", str(smoke_run), str(smoke_run)]) == 0

    def test_compare_injected_2x_slowdown_exits_1(self, smoke_run, tmp_path):
        data = json.loads(smoke_run.read_text())
        bench = next(iter(data["benchmarks"].values()))
        bench["times"] = [t * 2 for t in bench["times"]]
        for key in ("mean", "median", "mad", "min", "max", "ci_low", "ci_high"):
            bench["stats"][key] *= 2
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(data))
        assert main(["bench", "compare", str(smoke_run), str(slow)]) == 1

    def test_compare_missing_file_exits_2(self, tmp_path):
        missing = tmp_path / "nope.json"
        present = tmp_path / "p.json"
        write_result_json(present, _synthetic_result([1.0, 1.0]))
        assert main(["bench", "compare", str(missing), str(present)]) == 2

    def test_compare_profile_mismatch_exits_2(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_result_json(a, _synthetic_result([1.0, 1.0], profile="quick"))
        write_result_json(b, _synthetic_result([1.0, 1.0], profile="full"))
        assert main(["bench", "compare", str(a), str(b)]) == 2

    def test_compare_resolves_baseline_directory(self, tmp_path):
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        write_result_json(
            baselines / "baseline-quick.json", _synthetic_result([1.0, 1.0, 1.0])
        )
        cand = tmp_path / "cand.json"
        write_result_json(cand, _synthetic_result([1.0, 1.0, 1.0]))
        assert main(["bench", "compare", str(baselines), str(cand)]) == 0

    def test_report_single_and_trajectory(self, smoke_run, tmp_path, capsys):
        assert main(["bench", "report", str(smoke_run)]) == 0
        assert "bench results" in capsys.readouterr().out
        assert main(["bench", "report", str(smoke_run), str(smoke_run)]) == 0
        assert "perf trajectory" in capsys.readouterr().out

    def test_report_bad_file_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["bench", "report", str(bad)]) == 2

    def test_committed_baseline_is_schema_valid(self):
        from pathlib import Path

        baseline = Path(__file__).parent.parent / "benchmarks" / "baselines"
        result = read_result_json(baseline / "baseline-quick.json")
        assert result.profile == "quick"
        assert len(result.benchmarks) >= 5
