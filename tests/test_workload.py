"""Workload generator and Zipf sampler tests."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.sampler import ZipfSampler


class TestZipfSampler:
    def test_rank_bounds(self):
        sampler = ZipfSampler(100, s=1.0, rng=random.Random(1))
        for _ in range(1000):
            assert 0 <= sampler.sample() < 100

    def test_skew_head_is_hot(self):
        sampler = ZipfSampler(1000, s=1.1, rng=random.Random(2))
        counts = Counter(sampler.sample() for _ in range(5000))
        head = sum(counts[i] for i in range(10))
        tail = sum(counts[i] for i in range(500, 510))
        assert head > 5 * max(1, tail)

    def test_growth_extends_support(self):
        sampler = ZipfSampler(10, rng=random.Random(3))
        sampler.grow(1000)
        seen = {sampler.sample() for _ in range(3000)}
        assert max(seen) >= 10  # new cold ranks are reachable

    def test_growth_is_monotonic_noop_on_shrink(self):
        sampler = ZipfSampler(100)
        sampler.grow(50)
        assert sampler.population == 100

    def test_invalid_config(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, s=0)

    def test_sample_many(self):
        sampler = ZipfSampler(10, rng=random.Random(4))
        assert len(sampler.sample_many(25)) == 25


class TestWorkloadConfig:
    def test_fraction_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(contract_call_fraction=0.9, creation_fraction=0.2)

    def test_defaults_valid(self):
        WorkloadConfig()  # no exception


class TestWorkloadGenerator:
    def _gen(self, **kwargs):
        defaults = dict(
            seed=11, initial_eoa_accounts=300, initial_contracts=50, txs_per_block=20
        )
        defaults.update(kwargs)
        return WorkloadGenerator(WorkloadConfig(**defaults))

    def test_determinism(self):
        gen1, gen2 = self._gen(), self._gen()
        for number in range(1, 6):
            plan1 = gen1.make_block_plan(number)
            plan2 = gen2.make_block_plan(number)
            assert [p.tx.hash for p in plan1.tx_plans] == [
                p.tx.hash for p in plan2.tx_plans
            ]

    def test_different_seeds_differ(self):
        plan1 = self._gen(seed=1).make_block_plan(1)
        plan2 = self._gen(seed=2).make_block_plan(1)
        assert [p.tx.hash for p in plan1.tx_plans] != [
            p.tx.hash for p in plan2.tx_plans
        ]

    def test_tx_count_near_target(self):
        gen = self._gen(txs_per_block=20)
        counts = [len(gen.make_block_plan(n).tx_plans) for n in range(1, 30)]
        assert 14 <= sum(counts) / len(counts) <= 26

    def test_kind_mix_roughly_matches_config(self):
        gen = self._gen(txs_per_block=30)
        kinds = Counter()
        for number in range(1, 120):
            for plan in gen.make_block_plan(number).tx_plans:
                kinds[plan.kind] += 1
        total = sum(kinds.values())
        call_fraction = kinds["call"] / total
        assert 0.40 <= call_fraction <= 0.70
        assert kinds["transfer"] > 0
        assert kinds["create"] < total * 0.1

    def test_call_plans_have_slots(self):
        gen = self._gen()
        for number in range(1, 30):
            for plan in gen.make_block_plan(number).tx_plans:
                if plan.kind == "call":
                    assert plan.slot_reads and plan.slot_writes
                    for addr, _slot in plan.slot_reads:
                        assert addr == plan.recipient

    def test_creation_plans_have_code(self):
        gen = self._gen(creation_fraction=0.3, contract_call_fraction=0.3)
        created = []
        for number in range(1, 40):
            created += [
                p for p in gen.make_block_plan(number).tx_plans if p.kind == "create"
            ]
        assert created
        for plan in created:
            assert plan.deployed_code and plan.tx.is_creation

    def test_code_reuse_dominates_creations(self):
        gen = self._gen(
            creation_fraction=0.4, contract_call_fraction=0.2, code_reuse_fraction=0.9
        )
        codes = []
        for number in range(1, 60):
            codes += [
                p.deployed_code
                for p in gen.make_block_plan(number).tx_plans
                if p.kind == "create"
            ]
        assert len(codes) > len(set(codes))  # re-deployments happened

    def test_initial_population_accessors(self):
        gen = self._gen()
        assert len(gen.eoa_addresses) == 300
        assert len(gen.contract_addresses) == 50
        contract = gen.contract_addresses[0]
        assert gen.initial_code_for(contract) == gen.initial_code_for(contract)
        slots = gen.initial_slots_for(contract)
        assert len(slots) >= 1
        assert len({slot for slot, _ in slots}) == len(slots)

    def test_slot_clears_present(self):
        gen = self._gen(slot_clear_fraction=0.5)
        cleared = 0
        for number in range(1, 40):
            for plan in gen.make_block_plan(number).tx_plans:
                cleared += sum(1 for _, _, v in plan.slot_writes if v == b"")
        assert cleared > 0

    def test_block_plan_builds_block(self):
        gen = self._gen()
        plan = gen.make_block_plan(5)
        block = plan.build_block(b"\x01" * 32, b"\x02" * 32)
        assert block.number == 5
        assert block.header.parent_hash == b"\x01" * 32
        assert len(block.transactions) == len(plan.tx_plans)
