"""Cache policy simulation tests."""

from __future__ import annotations

import random

import pytest

from repro.cachesim import (
    CacheSimulator,
    CorrelationAwareCache,
    CorrelationTable,
    LRUPolicy,
    NoWriteAdmissionPolicy,
    SegmentedLRUPolicy,
)
from repro.core.classes import KVClass
from repro.core.trace import OpType, TraceRecord
from repro.errors import CacheSimError


def R(key, op=OpType.READ):
    return TraceRecord(op, key, 10, 0)


class TestLRUPolicy:
    def test_hit_after_miss(self):
        policy = LRUPolicy(4)
        assert not policy.on_read(b"k")
        assert policy.on_read(b"k")

    def test_capacity_eviction(self):
        policy = LRUPolicy(2)
        policy.on_read(b"a")
        policy.on_read(b"b")
        policy.on_read(b"c")  # evicts a
        assert not policy.on_read(b"a")

    def test_write_admission(self):
        policy = LRUPolicy(4, admit_writes=True)
        policy.on_write(b"k")
        assert policy.on_read(b"k")

    def test_delete_removes(self):
        policy = LRUPolicy(4)
        policy.on_read(b"k")
        policy.on_delete(b"k")
        assert not policy.on_read(b"k")

    def test_invalid_capacity(self):
        with pytest.raises(CacheSimError):
            LRUPolicy(0)


class TestNoWriteAdmission:
    def test_writes_not_admitted(self):
        policy = NoWriteAdmissionPolicy(4)
        policy.on_write(b"k")
        assert not policy.on_read(b"k")

    def test_written_key_already_cached_is_refreshed(self):
        policy = NoWriteAdmissionPolicy(2)
        policy.on_read(b"k")
        policy.on_write(b"k")  # stays cached
        assert policy.on_read(b"k")

    def test_beats_lru_on_write_heavy_trace(self):
        # Many never-read writes pollute the plain LRU.
        trace = []
        rng = random.Random(7)
        hot = [b"hot%d" % i for i in range(4)]
        for step in range(2000):
            trace.append(R(b"w%d" % step, OpType.WRITE))
            trace.append(R(hot[rng.randrange(4)]))
        lru = CacheSimulator(LRUPolicy(8)).replay(trace)
        nwa = CacheSimulator(NoWriteAdmissionPolicy(8)).replay(trace)
        assert nwa.hit_rate > lru.hit_rate


class TestSegmentedLRU:
    def test_classes_do_not_evict_each_other(self):
        policy = SegmentedLRUPolicy(40)
        ta_keys = [b"A%d" % i for i in range(3)]
        for key in ta_keys:
            policy.on_read(key)
        # Flood a different class; TA segment must survive.
        for i in range(500):
            policy.on_read(b"o" + bytes([i % 256]) * 64)
        assert all(policy.on_read(key) for key in ta_keys)

    def test_capacity_validation(self):
        with pytest.raises(CacheSimError):
            SegmentedLRUPolicy(2)

    def test_fraction_validation(self):
        with pytest.raises(CacheSimError):
            SegmentedLRUPolicy(100, {KVClass.CODE: 0.9, KVClass.TX_LOOKUP: 0.5})


class TestCorrelationTable:
    def test_learns_adjacent_pairs(self):
        table = CorrelationTable(window=2, min_occurrence=2)
        table.learn([b"a", b"b", b"a", b"b", b"a", b"b"])
        assert b"b" in table.partners_of(b"a")
        assert b"a" in table.partners_of(b"b")

    def test_one_off_pairs_ignored(self):
        table = CorrelationTable(window=2, min_occurrence=2)
        table.learn([b"a", b"b"])
        assert table.partners_of(b"a") == ()

    def test_max_partners_bound(self):
        table = CorrelationTable(window=6, max_partners=2)
        sequence = []
        for _ in range(10):
            sequence += [b"hub", b"p1", b"hub", b"p2", b"hub", b"p3"]
        table.learn(sequence)
        assert len(table.partners_of(b"hub")) <= 2

    def test_num_correlated_pairs(self):
        table = CorrelationTable(window=2)
        table.learn([b"a", b"b"] * 3)
        assert table.num_correlated_pairs == 1


class TestCorrelationAwareCache:
    def _correlated_trace(self, pairs=30, steps=1500, seed=3):
        rng = random.Random(seed)
        keys = [b"A%02d" % i for i in range(pairs)]
        partner = {k: b"O" + k for k in keys}
        trace = []
        for _ in range(steps):
            key = keys[rng.randrange(pairs)]
            trace.append(R(key))
            trace.append(R(partner[key]))
        return trace

    def test_prefetch_converts_misses(self):
        trace = self._correlated_trace()
        table = CorrelationTable(window=1)
        table.learn([r.key for r in trace[:600]])
        cache = CorrelationAwareCache(16, table)
        report = CacheSimulator(cache).replay(trace)
        assert report.prefetches > 0
        assert report.prefetch_hits > 0

    def test_beats_lru_on_correlated_trace(self):
        trace = self._correlated_trace()
        lru = CacheSimulator(LRUPolicy(16)).replay(trace)
        table = CorrelationTable(window=1)
        table.learn([r.key for r in trace[:600]])
        corr = CacheSimulator(CorrelationAwareCache(16, table)).replay(trace)
        assert corr.hit_rate > lru.hit_rate

    def test_capacity_validation(self):
        with pytest.raises(CacheSimError):
            CorrelationAwareCache(1, CorrelationTable())

    def test_delete_evicts(self):
        cache = CorrelationAwareCache(8, CorrelationTable())
        cache.on_read(b"k")
        cache.on_delete(b"k")
        assert not cache.on_read(b"k")


class TestSimulator:
    def test_report_counts(self):
        trace = [R(b"A1"), R(b"A1"), R(b"A2")]
        report = CacheSimulator(LRUPolicy(8)).replay(trace)
        assert report.reads == 3 and report.hits == 1
        assert report.store_reads == 2
        assert report.hit_rate == pytest.approx(1 / 3)

    def test_per_class_accounting(self):
        trace = [R(b"A1"), R(b"A1"), R(b"l" + b"\x01" * 32)]
        report = CacheSimulator(LRUPolicy(8)).replay(trace)
        assert report.per_class_reads[KVClass.TRIE_NODE_ACCOUNT] == 2
        assert report.class_hit_rate(KVClass.TRIE_NODE_ACCOUNT) == 0.5

    def test_class_filter(self):
        trace = [R(b"A1"), R(b"l" + b"\x01" * 32)]
        report = CacheSimulator(LRUPolicy(8)).replay(
            trace, classes={KVClass.TRIE_NODE_ACCOUNT}
        )
        assert report.reads == 1

    def test_render_smoke(self):
        report = CacheSimulator(LRUPolicy(8)).replay([R(b"A1")])
        assert "hit_rate" in report.render()
