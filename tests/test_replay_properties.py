"""Property tests for the concurrent replay engine.

Seeded ``random.Random`` loops (no external property-testing
dependency, matching ``tests/test_trace_properties.py``) assert the
engine's two load-bearing guarantees over randomized traces:

* **per-key order preservation** — for 1, 2, and 4 thread workers, the
  sub-sequence of point operations observed by any single key equals
  the serial replay's sub-sequence for that key, recorded at the store
  interface by :class:`RecordingStore`;
* **final-state identity** — serial and sharded replays (thread *and*
  process executors) leave byte-identical store contents, checked both
  by fingerprint and, for the in-process executors, by comparing the
  merged pair sets directly; the differential holds on every one of
  the five backends.
"""

from __future__ import annotations

import random

import pytest

from repro.core.trace import OpType, TraceRecord, write_trace_v2
from repro.obs import MetricsRegistry
from repro.replay import (
    BACKEND_NAMES,
    RecordingStore,
    ReplayConfig,
    combined_fingerprint,
    differential_replay,
    make_store,
    replay_trace,
)

WORKER_COUNTS = (1, 2, 4)


def random_trace(rng: random.Random, count: int) -> list[TraceRecord]:
    """A workload with heavy per-key contention (the adversarial case
    for ordering: interleaved writes/deletes on shared hot keys)."""
    hot = [bytes([65 + rng.randrange(8)]) + b"hot%d" % i for i in range(8)]
    cold = [
        bytes([65 + rng.randrange(8)]) + rng.randbytes(rng.randrange(4, 24))
        for _ in range(count // 4 or 1)
    ]
    records = []
    for i in range(count):
        key = rng.choice(hot) if rng.random() < 0.5 else rng.choice(cold)
        roll = rng.random()
        if roll < 0.40:
            op, size = OpType.WRITE, rng.randrange(0, 128)
        elif roll < 0.55:
            op, size = OpType.UPDATE, rng.randrange(0, 128)
        elif roll < 0.80:
            op, size = OpType.READ, 0
        elif roll < 0.95:
            op, size = OpType.DELETE, 0
        else:
            op, size = OpType.SCAN, 0
        records.append(TraceRecord(op, key, size, i // 50))
    return records


def write_random_trace(tmp_path, seed: int, count: int = 800):
    rng = random.Random(seed)
    path = tmp_path / f"trace-{seed}.v2"
    write_trace_v2(path, random_trace(rng, count), chunk_size=128)
    return path


def point_op_log(path, workers: int) -> dict[bytes, list[tuple[str, bytes]]]:
    """Replay with recording stores; return per-key point-op sequences."""
    recorders: list[RecordingStore] = []

    def factory(shard: int) -> RecordingStore:
        recorder = RecordingStore(make_store("memdb"))
        recorders.append(recorder)
        return recorder

    config = ReplayConfig(
        workers=workers,
        executor="thread",
        fingerprint=False,  # the fingerprint pass would log extra gets
    )
    replay_trace(path, config, registry=MetricsRegistry(), store_factory=factory)
    per_key: dict[bytes, list[tuple[str, bytes]]] = {}
    for recorder in recorders:
        for entry in recorder.log:
            per_key.setdefault(entry[1], []).append(entry)
    return per_key


@pytest.mark.parametrize("seed", range(4))
def test_per_key_order_matches_serial(tmp_path, seed):
    path = write_random_trace(tmp_path, seed)
    serial = point_op_log(path, workers=1)
    for workers in WORKER_COUNTS[1:]:
        sharded = point_op_log(path, workers=workers)
        assert sharded.keys() == serial.keys()
        for key, expected in serial.items():
            assert sharded[key] == expected, (
                f"key {key!r} observed a different op sequence "
                f"at workers={workers} (seed {seed})"
            )


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("executor", ("thread", "process"))
def test_final_state_identical_across_worker_counts(tmp_path, seed, executor):
    path = write_random_trace(
        tmp_path, seed, count=300 if executor == "process" else 800
    )
    reference = replay_trace(path, ReplayConfig(), registry=MetricsRegistry())
    for workers in WORKER_COUNTS[1:]:
        config = ReplayConfig(workers=workers, executor=executor)
        report = replay_trace(path, config, registry=MetricsRegistry())
        assert report.fingerprint == reference.fingerprint, (
            f"state diverged: {executor} x{workers}, seed {seed}"
        )
        assert report.final_len == reference.final_len


@pytest.mark.parametrize("seed", (11, 12))
def test_sharded_contents_byte_identical(tmp_path, seed):
    """Beyond fingerprints: the merged shard pair set equals serial's."""
    path = write_random_trace(tmp_path, seed)

    def collect(workers):
        stores = []

        def factory(shard):
            store = make_store("memdb")
            stores.append(store)
            return store

        replay_trace(
            path,
            ReplayConfig(workers=workers, fingerprint=False),
            registry=MetricsRegistry(),
            store_factory=factory,
        )
        merged = {}
        for store in stores:
            for key, value in store.scan(b""):
                assert key not in merged  # shards must be disjoint
                merged[key] = value
        return merged, combined_fingerprint(stores)

    serial_pairs, serial_fp = collect(1)
    for workers in WORKER_COUNTS[1:]:
        sharded_pairs, sharded_fp = collect(workers)
        assert sharded_pairs == serial_pairs
        assert sharded_fp == serial_fp


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_differential_passes_on_every_backend(tmp_path, backend):
    path = write_random_trace(tmp_path, seed=7, count=500)
    result = differential_replay(
        path,
        ReplayConfig(backend=backend, workers=4, executor="thread"),
        registry=MetricsRegistry(),
    )
    assert result.match, result.render()
    assert "IDENTICAL" in result.render()


def test_differential_detects_order_violation(tmp_path):
    """The harness itself must not be vacuous: a store that mangles one
    write produces a fingerprint mismatch."""
    path = write_random_trace(tmp_path, seed=3, count=400)

    class DroppyStore:
        def __init__(self, inner):
            self.inner = inner
            self.puts = 0

        def put(self, key, value):
            self.puts += 1
            if self.puts == 17:  # silently lose one write
                return
            self.inner.put(key, value)

        def __getattr__(self, name):
            return getattr(self.inner, name)

        def __len__(self):
            return len(self.inner)

    serial = replay_trace(path, ReplayConfig(), registry=MetricsRegistry())
    broken = replay_trace(
        path,
        ReplayConfig(),
        registry=MetricsRegistry(),
        store_factory=lambda shard: DroppyStore(make_store("memdb")),
    )
    assert broken.fingerprint != serial.fingerprint
