"""Golden-file regression test for the findings report.

The checked-in report in ``tests/golden/findings_report.txt`` pins the
full rendered output — finding numbers, pass/fail verdicts, metric
values, and formatting — of the small-workload sync pair the session
fixtures build.  Any drift in the workload generator, sync driver,
analysis pipeline, or report renderer shows up as a line-level diff
here instead of slipping through as a silent numeric shift.

To refresh after a deliberate change:

    PYTHONPATH=src:. python tests/golden/update_golden.py
"""

from __future__ import annotations

import difflib

from tests.golden_utils import FINDINGS_GOLDEN, build_golden_report_text


class TestFindingsGolden:
    def test_report_matches_golden(self, cache_analysis, bare_analysis):
        actual = build_golden_report_text(cache_analysis, bare_analysis)
        expected = FINDINGS_GOLDEN.read_text(encoding="utf-8")
        if actual != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(),
                    actual.splitlines(),
                    fromfile="tests/golden/findings_report.txt",
                    tofile="rendered report",
                    lineterm="",
                )
            )
            raise AssertionError(
                "findings report drifted from the golden file; if the change "
                "is deliberate, regenerate with "
                "`PYTHONPATH=src:. python tests/golden/update_golden.py`\n"
                + diff
            )

    def test_golden_structure(self):
        """Sanity-check the checked-in golden so a truncated or empty
        file cannot silently weaken the comparison."""
        text = FINDINGS_GOLDEN.read_text(encoding="utf-8")
        lines = text.splitlines()
        assert lines[0] == "=" * 72
        assert lines[1] == "Findings summary"
        findings = [line for line in lines if line.startswith("Finding ")]
        assert len(findings) >= 5
        for line in findings:
            assert "[PASS]" in line or "[FAIL]" in line
        assert text.endswith("\n")

    def test_all_findings_pass_in_golden(self):
        """The reproduction's headline claim: every finding holds at
        the pinned workload scale."""
        text = FINDINGS_GOLDEN.read_text(encoding="utf-8")
        assert "[FAIL]" not in text
