"""Smoke tests for the runnable examples.

Each example is executed as a subprocess with its smallest sensible
arguments; the assertion is that it exits cleanly and prints its
headline output.  These guard the user-facing entry points against
API drift.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "findings reproduced" in out

    def test_trace_tools(self, tmp_path):
        out = run_example("trace_tools.py", "--outdir", str(tmp_path))
        assert "Busiest blocks" in out
        assert (tmp_path / "cache_trace.bin").exists()

    def test_scenario_comparison(self):
        out = run_example("scenario_comparison.py", "--blocks", "30")
        assert "Share of all KV operations" in out
        assert "defi" in out

    def test_snap_sync_demo(self):
        out = run_example("snap_sync_demo.py", "--blocks", "30")
        assert "state root verified: True" in out
        assert "snap sync" in out

    def test_restart_recovery(self):
        out = run_example("restart_recovery.py")
        assert "clean shutdown detected: True" in out
        assert "snapshot REGENERATED" in out

    def test_hybrid_ablation(self):
        out = run_example("hybrid_ablation.py", "--blocks", "30")
        assert "write amplification" in out

    def test_correlation_cache_demo(self):
        out = run_example("correlation_cache_demo.py", "--blocks", "30")
        assert "correlation-aware" in out

    def test_figures(self):
        out = run_example("figures.py", "--blocks", "30")
        assert "Figure 2" in out and "Figure 7" in out

    def test_full_pipeline(self):
        out = run_example(
            "full_pipeline.py", "--blocks", "40", "--warmup", "20", "--accounts", "1500"
        )
        assert "Table I" in out
        assert "Findings 1-11" in out
