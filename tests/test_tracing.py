"""Tracing wrapper tests: the capture-point semantics the paper defines."""

from __future__ import annotations

from repro.core.trace import OpType, TraceRecord
from repro.kvstore.memdb import MemoryKVStore
from repro.kvstore.tracing import TraceCollector, TracingKVStore


def make_store():
    return TracingKVStore(MemoryKVStore())


class TestWriteUpdateClassification:
    def test_first_put_is_write(self):
        store = make_store()
        store.put(b"k", b"v")
        assert store.collector.records[0].op is OpType.WRITE

    def test_second_put_is_update(self):
        store = make_store()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.collector.records[1].op is OpType.UPDATE

    def test_put_after_delete_is_write_again(self):
        store = make_store()
        store.put(b"k", b"v1")
        store.delete(b"k")
        store.put(b"k", b"v2")
        ops = [r.op for r in store.collector.records]
        assert ops == [OpType.WRITE, OpType.DELETE, OpType.WRITE]


class TestReadTracing:
    def test_get_records_value_size(self):
        store = make_store()
        store.put(b"k", b"v" * 17)
        store.get(b"k")
        read = store.collector.records[-1]
        assert read.op is OpType.READ and read.value_size == 17

    def test_get_or_none_miss_records_zero(self):
        store = make_store()
        assert store.get_or_none(b"missing") is None
        read = store.collector.records[-1]
        assert read.op is OpType.READ and read.value_size == 0

    def test_has_is_untraced(self):
        store = make_store()
        store.has(b"k")
        assert store.collector.count == 0


class TestScanTracing:
    def test_full_scan_one_record(self):
        store = make_store()
        store.put(b"a1", b"xx")
        store.put(b"a2", b"yyy")
        store.collector.clear()
        results = list(store.scan(b"a"))
        assert len(results) == 2
        records = store.collector.records
        assert len(records) == 1
        assert records[0].op is OpType.SCAN
        assert records[0].key == b"a"
        assert records[0].value_size == 5

    def test_early_terminated_scan_still_recorded(self):
        store = make_store()
        for i in range(10):
            store.put(b"k%d" % i, b"v")
        store.collector.clear()
        for index, _ in enumerate(store.scan(b"k")):
            if index == 2:
                break
        scans = [r for r in store.collector.records if r.op is OpType.SCAN]
        assert len(scans) == 1


class TestBlockStamping:
    def test_records_carry_block_height(self):
        store = make_store()
        store.block_height = 7
        store.put(b"k", b"v")
        store.block_height = 8
        store.get(b"k")
        blocks = [r.block for r in store.collector.records]
        assert blocks == [7, 8]


class TestEnableToggle:
    def test_disabled_suppresses_records(self):
        store = make_store()
        store.enabled = False
        store.put(b"k", b"v")
        store.get(b"k")
        assert store.collector.count == 0
        store.enabled = True
        store.get(b"k")
        assert store.collector.count == 1


class TestCollectorSink:
    def test_sink_forwards_instead_of_retaining(self):
        forwarded: list[TraceRecord] = []
        collector = TraceCollector(sink=forwarded.append)
        store = TracingKVStore(MemoryKVStore(), collector)
        store.put(b"k", b"v")
        assert collector.records == []
        assert collector.count == 1
        assert len(forwarded) == 1

    def test_clear_resets(self):
        collector = TraceCollector()
        collector.emit(TraceRecord(OpType.READ, b"k", 0, 0))
        collector.clear()
        assert collector.count == 0 and collector.records == []


class TestBatchThroughTracing:
    def test_batch_commit_traces_in_staging_order(self):
        store = make_store()
        batch = store.write_batch()
        batch.put(b"b", b"2")
        batch.put(b"a", b"1")
        batch.delete(b"c")
        batch.commit()
        keys = [r.key for r in store.collector.records]
        assert keys == [b"b", b"a", b"c"]  # staging order, not key order
