"""Property-based tests for journal serialization round-trips."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.chain.account import Account
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.snapshot import SnapshotTree
from repro.gethdb.state import TrieNodeStore

hashes32 = st.binary(min_size=32, max_size=32)
node_keys = st.binary(min_size=2, max_size=40).map(lambda b: b"A" + b)
blobs = st.one_of(st.none(), st.binary(min_size=1, max_size=64))


class TestTrieJournalProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(node_keys, blobs, max_size=30))
    def test_buffer_roundtrip(self, buffer):
        db = GethDatabase(DBConfig.cache_trace_config())
        store = TrieNodeStore(db, buffered=True)
        for key, blob in buffer.items():
            if blob is None:
                store.delete(key)
            else:
                store.put(key, blob)
        journal = store.encode_journal()

        restored = TrieNodeStore(db, buffered=True)
        assert restored.load_journal(journal) == len(buffer)
        assert restored._buffer == store._buffer


accounts = st.builds(
    Account,
    nonce=st.integers(min_value=0, max_value=2**32),
    balance=st.integers(min_value=0, max_value=2**128),
)
account_entries = st.dictionaries(
    hashes32, st.one_of(st.none(), accounts), max_size=10
)
storage_entries = st.dictionaries(
    st.tuples(hashes32, hashes32),
    st.one_of(st.none(), st.binary(min_size=1, max_size=32)),
    max_size=10,
)


class TestSnapshotJournalProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(hashes32, account_entries, storage_entries), max_size=4))
    def test_layer_stack_roundtrip(self, layers):
        db = GethDatabase(DBConfig.cache_trace_config())
        tree = SnapshotTree(db, flush_depth=100, flush_interval=1000)
        for root, account_map, storage_map in layers:
            tree.update(root, account_map, dict(storage_map))
        journal = tree.encode_journal()

        restored = SnapshotTree(db, flush_depth=100, flush_interval=1000)
        assert restored.load_journal(journal) == len(layers)
        # Observable equivalence: every touched key reads identically.
        for root, account_map, storage_map in layers:
            for account_hash in account_map:
                assert restored.get_account(account_hash) == tree.get_account(
                    account_hash
                )
            for account_hash, slot_hash in storage_map:
                assert restored.get_storage(
                    account_hash, slot_hash
                ) == tree.get_storage(account_hash, slot_hash)
