"""Columnar chunk and vectorized classifier tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.classes import (
    AMBIGUOUS_FIRST_BYTES,
    CLASS_IDS,
    SINGLETON_KEYS,
    UNKNOWN_CLASS_ID,
    classify_key,
)
from repro.core.columnar import (
    ChunkBuilder,
    ColumnarTrace,
    TraceChunk,
    chunk_records,
    class_ids_for_keys,
)
from repro.core.trace import OpType, TraceRecord, write_trace, write_trace_v2
from repro.errors import TraceFormatError

record_strategy = st.builds(
    TraceRecord,
    op=st.sampled_from(list(OpType)),
    key=st.binary(min_size=1, max_size=64),
    value_size=st.integers(min_value=0, max_value=2**32 - 1),
    block=st.integers(min_value=0, max_value=2**32 - 1),
)


def _sample_records():
    return [
        TraceRecord(OpType.WRITE, b"lABCDEF", 100, 1),
        TraceRecord(OpType.READ, b"A\x00\x12", 42, 2),
        TraceRecord(OpType.READ, b"lABCDEF", 100, 2),
        TraceRecord(OpType.DELETE, b"h" + b"\x01" * 40, 0, 3),
        TraceRecord(OpType.SCAN, b"a", 12345, 4),
        TraceRecord(OpType.UPDATE, b"LastHeader", 32, 5),
    ]


class TestClassIdsForKeys:
    def test_matches_exact_classifier_on_schema_keys(self):
        keys = [
            b"lABCDEF",  # tx lookup
            b"A\x00\x12",  # snapshot account
            b"h" + b"\x01" * 40,
            b"a\x99",
            b"LastHeader",  # singleton (ambiguous first byte 'L')
            b"LastFa",  # non-singleton key starting with 'L'
            b"SnapshotJournal",  # singleton
            b"S\x01\x02",  # non-singleton 'S' key
            b"ethereum-config-mainnet",  # literal prefix
            b"ethereum-genesis-x",
            b"iB\x00\x01",  # bloom bits index
            b"iX",  # 'i' first byte but not the iB literal
            b"unclean-shutdown",
            b"\x00weird",
            b"zzz-no-such-prefix",
        ]
        expected = [CLASS_IDS[classify_key(key)] for key in keys]
        assert class_ids_for_keys(keys).tolist() == expected

    def test_all_singletons(self):
        keys = list(SINGLETON_KEYS)
        expected = [CLASS_IDS[classify_key(key)] for key in keys]
        assert class_ids_for_keys(keys).tolist() == expected

    def test_empty_inputs(self):
        assert class_ids_for_keys([]).tolist() == []
        assert class_ids_for_keys([b""]).tolist() == [UNKNOWN_CLASS_ID]

    def test_ambiguous_bytes_cover_singletons(self):
        # the fallback set must cover every literal the table can't decide
        for key in SINGLETON_KEYS:
            assert key[0] in AMBIGUOUS_FIRST_BYTES

    @given(st.lists(st.binary(min_size=0, max_size=48), max_size=64))
    def test_matches_exact_classifier(self, keys):
        expected = [CLASS_IDS[classify_key(key)] for key in keys]
        assert class_ids_for_keys(keys).tolist() == expected


class TestTraceChunk:
    def test_roundtrip(self):
        records = _sample_records()
        chunk = TraceChunk.from_records(records)
        assert len(chunk) == len(records)
        assert list(chunk.to_records()) == records
        assert [chunk.record(i) for i in range(len(chunk))] == records

    def test_interning(self):
        records = _sample_records()
        chunk = TraceChunk.from_records(records)
        # b"lABCDEF" appears twice but is stored once
        assert chunk.num_keys == len(records) - 1
        assert len(set(chunk.keys)) == chunk.num_keys
        assert chunk.key_ids[0] == chunk.key_ids[2]

    def test_class_ids_match_classifier(self):
        chunk = TraceChunk.from_records(_sample_records())
        expected = [
            CLASS_IDS[classify_key(record.key)] for record in chunk.to_records()
        ]
        assert chunk.class_ids.tolist() == expected
        assert chunk.class_ids.dtype == np.uint8

    def test_key_lens(self):
        chunk = TraceChunk.from_records(_sample_records())
        assert chunk.key_lens.tolist() == [len(key) for key in chunk.keys]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            TraceChunk(
                ops=np.zeros(2, dtype=np.uint8),
                value_sizes=np.zeros(1, dtype=np.uint32),
                blocks=np.zeros(2, dtype=np.uint32),
                key_ids=np.zeros(2, dtype=np.uint32),
                keys=[b"x"],
            )

    def test_oversized_key_rejected(self):
        builder = ChunkBuilder()
        with pytest.raises(TraceFormatError):
            builder.append(TraceRecord(OpType.READ, b"x" * 70000, 0, 0))

    def test_nbytes_positive(self):
        assert TraceChunk.from_records(_sample_records()).nbytes > 0

    @given(st.lists(record_strategy, max_size=80))
    def test_roundtrip_property(self, records):
        chunk = TraceChunk.from_records(records)
        assert list(chunk.to_records()) == records


class TestChunkRecords:
    def test_chunk_sizes(self):
        records = _sample_records() * 5  # 30 records
        chunks = list(chunk_records(records, chunk_size=7))
        assert [len(chunk) for chunk in chunks] == [7, 7, 7, 7, 2]
        flattened = [r for chunk in chunks for r in chunk.to_records()]
        assert flattened == records

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunk_records(_sample_records(), chunk_size=0))

    def test_empty(self):
        assert list(chunk_records([], chunk_size=4)) == []


class TestColumnarTrace:
    def test_from_records(self):
        records = _sample_records() * 3
        trace = ColumnarTrace.from_records(records, chunk_size=4)
        assert len(trace) == len(records)
        assert trace.num_chunks == 5
        assert list(trace.iter_records()) == records

    @pytest.mark.parametrize("writer", [write_trace, write_trace_v2])
    def test_from_file_both_versions(self, tmp_path, writer):
        records = _sample_records() * 4
        path = tmp_path / "trace.bin"
        writer(path, records)
        trace = ColumnarTrace.from_file(path, chunk_size=10)
        assert len(trace) == len(records)
        assert list(trace.iter_records()) == records
