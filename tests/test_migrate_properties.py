"""Migration matrix and property tests.

* Every ordered backend pair (5×4) migrates a small store under
  scripted live traffic and lands fingerprint-identical post-cutover.
* Seeded property runs interleave *random* writes, updates, and
  deletes through the mirror during the bulk copy and the catch-up
  rounds, then assert the delta catch-up converged to a byte-identical
  final state (level ≤ 2 verification match plus an independent
  fingerprint comparison).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.migrate import MigrationConfig, MigrationEngine, verify_stores
from repro.obs import MetricsRegistry
from repro.replay.backends import BACKEND_NAMES, make_store
from repro.replay.verify import store_fingerprint

ORDERED_PAIRS = [
    (a, b) for a, b in itertools.product(BACKEND_NAMES, BACKEND_NAMES) if a != b
]


def seeded_store(backend: str, *, num_keys: int, seed: int):
    rng = random.Random(seed)
    store = make_store(backend)
    for _ in range(num_keys):
        key = rng.randbytes(rng.randint(4, 24))
        store.put(key, rng.randbytes(rng.randint(1, 120)))
    return store


class RandomTraffic:
    """Seeded random mutations pushed through the mirror at engine events."""

    def __init__(self, seed: int, *, ops_per_event: int = 6) -> None:
        self.rng = random.Random(seed)
        self.ops_per_event = ops_per_event
        self.written: list[bytes] = []
        self.ops = 0

    def __call__(self, event: str, engine: MigrationEngine) -> None:
        if event == "post-cutover":
            return
        live = engine.live
        for _ in range(self.ops_per_event):
            roll = self.rng.random()
            if roll < 0.55 or not self.written:
                key = b"rt" + self.rng.randbytes(self.rng.randint(2, 16))
                live.put(key, self.rng.randbytes(self.rng.randint(1, 90)))
                self.written.append(key)
            elif roll < 0.8:
                key = self.rng.choice(self.written)  # update an earlier key
                live.put(key, self.rng.randbytes(self.rng.randint(1, 90)))
            else:
                key = self.written.pop(self.rng.randrange(len(self.written)))
                if live.has(key):
                    live.delete(key)
            self.ops += 1


@pytest.mark.parametrize(
    "backend_from,backend_to", ORDERED_PAIRS, ids=lambda v: v
)
def test_backend_pair_matrix(backend_from, backend_to):
    """All 20 ordered pairs converge under scripted live traffic."""
    source = seeded_store(backend_from, num_keys=120, seed=hash((backend_from, 1)) & 0xFFFF)
    destination = make_store(backend_to)
    traffic = RandomTraffic(seed=7, ops_per_event=4)
    engine = MigrationEngine(
        source,
        destination,
        MigrationConfig(
            backend_from=backend_from,
            backend_to=backend_to,
            range_pairs=32,
            lag_threshold=0,
        ),
        registry=MetricsRegistry(),
        on_event=traffic,
    )
    report = engine.run()
    assert report.completed, report.render()
    assert report.verify is not None and report.verify.match, report.render()
    assert store_fingerprint(destination) == store_fingerprint(source)
    assert engine.live.active is destination


@pytest.mark.parametrize("seed", [11, 23, 47, 101, 2024])
def test_random_interleaved_writes_converge(seed):
    """Random traffic during bulk copy + catch-up still converges."""
    rng = random.Random(seed)
    backend_from, backend_to = rng.sample(list(BACKEND_NAMES), 2)
    source = seeded_store(backend_from, num_keys=rng.randint(150, 400), seed=seed)
    destination = make_store(backend_to)
    traffic = RandomTraffic(seed=seed * 31, ops_per_event=rng.randint(3, 12))
    engine = MigrationEngine(
        source,
        destination,
        MigrationConfig(
            backend_from=backend_from,
            backend_to=backend_to,
            range_pairs=rng.choice([16, 48, 96]),
            delta_shards=rng.choice([1, 3, 4, 8]),
            copy_workers=rng.choice([1, 2, 3]),
            lag_threshold=0,
        ),
        registry=MetricsRegistry(),
        on_event=traffic,
    )
    report = engine.run()
    assert report.completed, report.render()
    assert traffic.ops > 0
    assert report.delta_ops > 0  # the traffic actually raced the copy
    assert report.verify.match, report.render()
    # Independent re-check, not just the engine's own verdict.
    recheck = verify_stores(source, destination)
    assert recheck.match and recheck.level == 2


@pytest.mark.parametrize("seed", [5, 77])
def test_delete_heavy_traffic_converges(seed):
    """Deletes racing the copy are caught up, not resurrected."""
    source = seeded_store("memdb", num_keys=250, seed=seed)
    destination = make_store("btree")
    source_keys = sorted(source.keys())
    rng = random.Random(seed)

    def deleting_traffic(event, engine):
        if event == "post-cutover":
            return
        for _ in range(5):
            if not source_keys:
                return
            key = source_keys.pop(rng.randrange(len(source_keys)))
            engine.live.delete(key)

    engine = MigrationEngine(
        source,
        destination,
        MigrationConfig(
            backend_from="memdb", backend_to="btree", range_pairs=32, lag_threshold=0
        ),
        registry=MetricsRegistry(),
        on_event=deleting_traffic,
    )
    report = engine.run()
    assert report.completed and report.verify.match, report.render()
    assert len(destination) == len(source) < 250
