"""Restart and crash-recovery tests."""

from __future__ import annotations

import pytest

from repro.core.classes import KVClass, classify_key
from repro.core.trace import OpType
from repro.errors import GethDBError
from repro.gethdb import schema
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.snapshot import SnapshotTree
from repro.sync.driver import FullSyncDriver, SyncConfig
from repro.sync.recovery import resume
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=91, initial_eoa_accounts=300, initial_contracts=50, txs_per_block=8
)


def fresh_driver(cache: bool = True) -> FullSyncDriver:
    db_config = (
        DBConfig.cache_trace_config(128 * 1024) if cache else DBConfig.bare_trace_config()
    )
    return FullSyncDriver(
        SyncConfig(db=db_config, warmup_blocks=6),
        WorkloadGenerator(WORKLOAD),
        name="first-life",
    )


class TestJournalRoundTrips:
    def test_trie_journal_roundtrip(self):
        from repro.gethdb.state import TrieNodeStore

        db = GethDatabase(DBConfig.cache_trace_config())
        store = TrieNodeStore(db, buffered=True)
        store.put(b"A\x01", b"node-one")
        store.put(b"A\x02", b"node-two")
        store.delete(b"A\x03")
        blob = store.encode_journal()

        restored = TrieNodeStore(db, buffered=True)
        assert restored.load_journal(blob) == 3
        assert restored.get(b"A\x01") == b"node-one"
        assert restored.get(b"A\x03") is None  # pending deletion survives

    def test_snapshot_journal_roundtrip(self):
        from repro.chain.account import Account

        db = GethDatabase(DBConfig.cache_trace_config())
        tree = SnapshotTree(db, flush_depth=4, flush_interval=100)
        tree.update(b"\x0a" * 32, {b"\x01" * 32: Account(nonce=5)}, {})
        tree.update(
            b"\x0b" * 32,
            {b"\x02" * 32: None},
            {(b"\x01" * 32, b"\x03" * 32): b"slotval"},
        )
        blob = tree.encode_journal()

        restored = SnapshotTree(db, flush_depth=4, flush_interval=100)
        assert restored.load_journal(blob) == 2
        assert Account.decode_slim(restored.get_account(b"\x01" * 32)).nonce == 5
        assert restored.get_account(b"\x02" * 32) is None
        assert restored.get_storage(b"\x01" * 32, b"\x03" * 32) == b"slotval"


class TestCleanRestart:
    @pytest.fixture(scope="class")
    def restarted(self):
        first = fresh_driver()
        first.run(20)  # clean shutdown
        blocks = first._blocks_run
        driver, report = resume(
            first.db,
            first.config,
            WORKLOAD,
            blocks_processed=blocks,
            name="second-life",
        )
        return first, driver, report

    def test_clean_shutdown_detected(self, restarted):
        _, _, report = restarted
        assert report.clean_shutdown
        assert not report.snapshot_regenerated

    def test_head_recovered(self, restarted):
        first, driver, report = restarted
        assert report.head_number == first._head_number
        assert driver._head_hash == first._head_hash

    def test_journals_loaded(self, restarted):
        _, _, report = restarted
        # The trie journal may be empty (flushed at shutdown); the
        # snapshot diff stack is journaled un-flushed and must reload.
        assert report.snapshot_journal_layers >= 1

    def test_state_readable_after_restart(self, restarted):
        first, driver, _ = restarted
        address = first.workload.eoa_addresses[0]
        assert driver.state.get_account(address) == first.state.get_account(address)

    def test_can_continue_syncing(self, restarted):
        first, driver, _ = restarted
        head_before = driver._head_number
        for _ in range(5):
            driver._import_next_block()
        assert driver._head_number == head_before + 5
        # Continued blocks execute against recovered state: reads flow.
        tail = [r for r in driver.db.collector.records if r.block > head_before]
        assert sum(1 for r in tail if r.op is OpType.READ) > 20

    def test_wrong_block_position_rejected(self):
        first = fresh_driver()
        first.run(10)
        with pytest.raises(GethDBError):
            resume(first.db, first.config, WORKLOAD, blocks_processed=999)

    def test_uninitialized_database_rejected(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        with pytest.raises(GethDBError):
            resume(db, SyncConfig(), WORKLOAD, blocks_processed=0)


class TestCrashRecovery:
    @pytest.fixture(scope="class")
    def crashed(self):
        first = fresh_driver()
        first.run(20, clean_shutdown=False)  # crash: no journals written
        driver, report = resume(
            first.db,
            first.config,
            WORKLOAD,
            blocks_processed=first._blocks_run,
            name="post-crash",
        )
        return first, driver, report

    def test_crash_detected(self, crashed):
        _, _, report = crashed
        assert not report.clean_shutdown

    def test_snapshot_regenerated(self, crashed):
        first, _, report = crashed
        assert report.snapshot_regenerated
        assert report.regenerated_accounts >= 300
        assert report.regenerated_slots > 100

    def test_recovery_markers_written(self, crashed):
        first, driver, _ = crashed
        assert driver.db.has(schema.SNAPSHOT_RECOVERY_KEY)
        assert driver.db.store.inner.get(schema.SNAPSHOT_GENERATOR_KEY) == b"done"
        assert driver.db.has(schema.SNAPSHOT_ROOT_KEY)

    def test_regenerated_snapshot_serves_reads(self, crashed):
        first, driver, _ = crashed
        address = first.workload.eoa_addresses[1]
        expected = first.state.get_account(address)
        # Force the snapshot path (fresh StateDB, no dirty state).
        from repro.gethdb.state import StateDB

        fresh = StateDB(driver.db, driver.snapshots)
        assert fresh.get_account(address) == expected

    def test_crash_rewinds_and_reexecutes(self, crashed):
        first, driver, report = crashed
        # Blocks whose trie changes lived only in the lost dirty buffer
        # were rewound and replayed (up to trie_flush_interval of them).
        assert 0 <= report.blocks_reexecuted <= first.config.trie_flush_interval
        assert driver._head_number == first._head_number

    def test_reexecution_restores_exact_state(self, crashed):
        first, driver, _ = crashed
        # After replaying the rewound tail, the state trie converges to
        # the exact pre-crash state (same deterministic block plans).
        first_root = first.state._account_trie.root_hash()
        recovered_root = driver.state._account_trie.root_hash()
        assert first_root == recovered_root

    def test_regeneration_writes_snapshot_classes(self, crashed):
        _, driver, _ = crashed
        snapshot_writes = [
            r
            for r in driver.db.collector.records
            if r.op in (OpType.WRITE, OpType.UPDATE)
            and classify_key(r.key)
            in (KVClass.SNAPSHOT_ACCOUNT, KVClass.SNAPSHOT_STORAGE)
        ]
        assert len(snapshot_writes) > 300


class TestBareRestart:
    def test_bare_mode_resumes_without_snapshot(self):
        first = fresh_driver(cache=False)
        first.run(15)
        driver, report = resume(
            first.db, first.config, WORKLOAD, blocks_processed=first._blocks_run
        )
        assert report.snapshot_journal_layers == 0
        assert not report.snapshot_regenerated
        for _ in range(3):
            driver._import_next_block()
        assert driver._head_number == report.head_number + 3
