"""RLP codec tests: Yellow-Paper vectors, errors, and property-based roundtrips."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import rlp
from repro.errors import RLPDecodingError, RLPEncodingError


class TestEncodeVectors:
    """Canonical encodings from the Yellow Paper / Ethereum wiki."""

    def test_empty_string(self):
        assert rlp.encode(b"") == b"\x80"

    def test_single_low_byte_is_itself(self):
        assert rlp.encode(b"\x00") == b"\x00"
        assert rlp.encode(b"\x7f") == b"\x7f"

    def test_single_high_byte_is_prefixed(self):
        assert rlp.encode(b"\x80") == b"\x81\x80"

    def test_short_string(self):
        assert rlp.encode(b"dog") == b"\x83dog"

    def test_55_byte_string_uses_short_form(self):
        payload = b"a" * 55
        assert rlp.encode(payload) == bytes([0x80 + 55]) + payload

    def test_56_byte_string_uses_long_form(self):
        payload = b"a" * 56
        assert rlp.encode(payload) == b"\xb8\x38" + payload

    def test_empty_list(self):
        assert rlp.encode([]) == b"\xc0"

    def test_nested_list(self):
        # [ [], [[]], [ [], [[]] ] ] — the canonical set-theoretic vector
        assert rlp.encode([[], [[]], [[], [[]]]]) == bytes.fromhex("c7c0c1c0c3c0c1c0")

    def test_cat_dog_list(self):
        assert rlp.encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"

    def test_integer_zero_is_empty_string(self):
        assert rlp.encode(0) == b"\x80"

    def test_integer_encoding(self):
        assert rlp.encode(15) == b"\x0f"
        assert rlp.encode(1024) == b"\x82\x04\x00"

    def test_str_encodes_utf8(self):
        assert rlp.encode("dog") == b"\x83dog"


class TestEncodeErrors:
    def test_negative_integer_rejected(self):
        with pytest.raises(RLPEncodingError):
            rlp.encode(-1)

    def test_bool_rejected(self):
        with pytest.raises(RLPEncodingError):
            rlp.encode(True)

    def test_unencodable_type_rejected(self):
        with pytest.raises(RLPEncodingError):
            rlp.encode(object())


class TestDecodeErrors:
    def test_empty_input(self):
        with pytest.raises(RLPDecodingError):
            rlp.decode(b"")

    def test_trailing_bytes(self):
        with pytest.raises(RLPDecodingError):
            rlp.decode(b"\x83dogX")

    def test_truncated_payload(self):
        with pytest.raises(RLPDecodingError):
            rlp.decode(b"\x83do")

    def test_non_canonical_single_byte(self):
        # 0x81 0x05 must have been encoded as 0x05 directly.
        with pytest.raises(RLPDecodingError):
            rlp.decode(b"\x81\x05")

    def test_long_form_for_short_payload(self):
        # 0xb8 0x01 'x' should have used the short form.
        with pytest.raises(RLPDecodingError):
            rlp.decode(b"\xb8\x01x")

    def test_length_with_leading_zero(self):
        with pytest.raises(RLPDecodingError):
            rlp.decode(b"\xb9\x00\x38" + b"a" * 56)

    def test_non_bytes_input(self):
        with pytest.raises(RLPDecodingError):
            rlp.decode("dog")  # type: ignore[arg-type]


class TestUintHelpers:
    def test_zero_roundtrip(self):
        assert rlp.encode_uint(0) == b""
        assert rlp.decode_uint(b"") == 0

    def test_minimal_encoding(self):
        assert rlp.encode_uint(256) == b"\x01\x00"

    def test_leading_zero_rejected(self):
        with pytest.raises(RLPDecodingError):
            rlp.decode_uint(b"\x00\x01")

    def test_negative_rejected(self):
        with pytest.raises(RLPEncodingError):
            rlp.encode_uint(-5)


# Recursive strategy: byte strings and nested lists thereof.
rlp_items = st.recursive(
    st.binary(max_size=80),
    lambda children: st.lists(children, max_size=6),
    max_leaves=25,
)


class TestProperties:
    @given(rlp_items)
    def test_roundtrip(self, item):
        decoded = rlp.decode(rlp.encode(item))
        assert _normalize(item) == decoded

    @given(rlp_items)
    def test_length_of_matches_encode(self, item):
        assert rlp.length_of(item) == len(rlp.encode(item))

    @given(st.integers(min_value=0, max_value=2**256))
    def test_uint_roundtrip(self, value):
        assert rlp.decode_uint(rlp.encode_uint(value)) == value

    @given(st.binary(max_size=200))
    def test_encoded_size_bound(self, payload):
        # Prefix adds at most 1 + len(len) bytes.
        encoded = rlp.encode(payload)
        assert len(encoded) <= len(payload) + 9


def _normalize(item):
    """Encoding maps tuples to lists and bytearrays to bytes."""
    if isinstance(item, (list, tuple)):
        return [_normalize(sub) for sub in item]
    return bytes(item)
