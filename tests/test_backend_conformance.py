"""Backend-conformance matrix.

One parametrized suite asserting that every shipped backend — memdb,
btree, hashlog, lsm, hybrid — implements the :class:`KVStore` contract
*identically*: same semantics for point ops, ordered scans, prefix
scans, write batches, and length accounting.  The replay engine's
backend factory is only sound because of this interchangeability, so
the matrix drives each store through the factory it actually uses.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import KeyNotFoundError
from repro.replay import BACKEND_NAMES, make_store


@pytest.fixture(params=BACKEND_NAMES)
def store(request):
    store = make_store(request.param)
    yield store
    store.close()


def test_factory_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown replay backend"):
        make_store("rocksdb")


def test_get_put_roundtrip(store):
    store.put(b"alpha", b"1")
    store.put(b"beta", b"2")
    assert store.get(b"alpha") == b"1"
    assert store.get(b"beta") == b"2"


def test_get_missing_raises(store):
    with pytest.raises(KeyNotFoundError):
        store.get(b"missing")
    assert store.get_or_none(b"missing") is None


def test_put_overwrites(store):
    store.put(b"k", b"old")
    store.put(b"k", b"new")
    assert store.get(b"k") == b"new"
    assert len(store) == 1


def test_empty_value_is_a_live_pair(store):
    store.put(b"k", b"")
    assert store.get(b"k") == b""
    assert store.has(b"k")
    assert len(store) == 1


def test_delete_and_blind_delete(store):
    store.put(b"k", b"v")
    store.delete(b"k")
    assert not store.has(b"k")
    assert store.get_or_none(b"k") is None
    # Pebble semantics: deleting an absent key is a no-op, not an error.
    store.delete(b"k")
    store.delete(b"never-existed")
    assert len(store) == 0


def test_has(store):
    assert not store.has(b"k")
    store.put(b"k", b"v")
    assert store.has(b"k")


def test_len_counts_live_keys(store):
    assert len(store) == 0
    for i in range(10):
        store.put(b"k%d" % i, b"v")
    assert len(store) == 10
    store.put(b"k3", b"v2")  # overwrite: no growth
    assert len(store) == 10
    store.delete(b"k3")
    assert len(store) == 9


def test_scan_is_ordered_and_bounded(store):
    pairs = {b"b": b"2", b"d": b"4", b"a": b"1", b"c": b"3", b"e": b"5"}
    for key, value in pairs.items():
        store.put(key, value)
    assert list(store.scan(b"")) == sorted(pairs.items())
    # start inclusive, end exclusive
    assert list(store.scan(b"b", b"d")) == [(b"b", b"2"), (b"c", b"3")]
    # start between keys
    assert [k for k, _ in store.scan(b"bb")] == [b"c", b"d", b"e"]
    # empty ranges
    assert list(store.scan(b"x")) == []
    assert list(store.scan(b"c", b"c")) == []


def test_scan_skips_deleted(store):
    for key in (b"a", b"b", b"c"):
        store.put(key, b"v")
    store.delete(b"b")
    assert [k for k, _ in store.scan(b"")] == [b"a", b"c"]


def test_scan_prefix(store):
    store.put(b"acct:1", b"a1")
    store.put(b"acct:2", b"a2")
    store.put(b"acctx", b"x")  # shares the byte prefix "acct"
    store.put(b"code:1", b"c1")
    assert [k for k, _ in store.scan_prefix(b"acct:")] == [b"acct:1", b"acct:2"]
    assert [k for k, _ in store.scan_prefix(b"acct")] == [
        b"acct:1",
        b"acct:2",
        b"acctx",
    ]
    assert list(store.scan_prefix(b"zzz")) == []


def test_scan_prefix_all_ff(store):
    store.put(b"\xff\xff\x01", b"v1")
    store.put(b"\xff\xff\xff", b"v2")
    assert [k for k, _ in store.scan_prefix(b"\xff\xff")] == [
        b"\xff\xff\x01",
        b"\xff\xff\xff",
    ]


def test_keys_iterates_in_order(store):
    for key in (b"c", b"a", b"b"):
        store.put(key, b"v")
    assert list(store.keys()) == [b"a", b"b", b"c"]


def test_write_batch_applies_atomically_in_order(store):
    store.put(b"stale", b"old")
    batch = store.write_batch()
    batch.put(b"k1", b"v1")
    batch.put(b"stale", b"new")
    batch.delete(b"k1")
    batch.put(b"k1", b"v1-again")  # last op on a key wins
    assert len(batch) == 2
    assert len(store) == 1  # nothing applied before commit
    batch.commit()
    assert store.get(b"k1") == b"v1-again"
    assert store.get(b"stale") == b"new"
    assert len(batch) == 0  # commit resets the batch


def test_write_batch_delete_wins_when_last(store):
    store.put(b"k", b"v")
    batch = store.write_batch()
    batch.put(b"k", b"v2")
    batch.delete(b"k")
    batch.commit()
    assert not store.has(b"k")


def test_write_batch_reset_discards(store):
    batch = store.write_batch()
    batch.put(b"k", b"v")
    batch.reset()
    batch.commit()
    assert len(store) == 0


def test_randomized_model_equivalence(store):
    """Every backend must track a dict model through a mixed workload."""
    rng = random.Random(99)
    model: dict[bytes, bytes] = {}
    keys = [bytes([65 + rng.randrange(8)]) + rng.randbytes(3) for _ in range(64)]
    for step in range(600):
        key = rng.choice(keys)
        roll = rng.random()
        if roll < 0.55:
            value = rng.randbytes(rng.randrange(0, 40))
            store.put(key, value)
            model[key] = value
        elif roll < 0.8:
            assert store.get_or_none(key) == model.get(key)
        else:
            store.delete(key)
            model.pop(key, None)
        if step % 97 == 0:
            assert list(store.scan(b"")) == sorted(model.items())
    assert len(store) == len(model)
    assert list(store.scan(b"")) == sorted(model.items())
