"""Observability-layer tests: registry, merges, spans, exporters.

The merge tests lock down the property the sharded analysis relies on:
snapshot merging is associative and ``absorb`` is equivalent to
snapshot-level merging, so any grouping of worker snapshots reduces to
the same totals.  The Prometheus exposition output is parsed and
validated in-test rather than eyeballed.
"""

from __future__ import annotations

import json
import random
import re

import pytest

from repro.kvstore.lsm import LSMStore
from repro.kvstore.memdb import MemoryKVStore
from repro.kvstore.metrics import bind_store_metrics
from repro.obs import get_registry, set_registry, use_registry
from repro.obs.export import (
    read_snapshot_json,
    to_prometheus_text,
    write_snapshot_json,
)
from repro.obs.registry import (
    COUNTER,
    counter_deltas,
    diff_snapshots,
    DEFAULT_TIME_BUCKETS,
    GAUGE,
    NULL_REGISTRY,
    HistogramValue,
    MetricsRegistry,
    NullRegistry,
    RegistrySnapshot,
    Sample,
    exponential_buckets,
    merge_snapshots,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.span import SPAN_SECONDS, SPANS_TOTAL, Span, current_span_path, span


def random_snapshot(seed: int) -> RegistrySnapshot:
    """A registry filled with seeded random metric traffic, snapshotted."""
    rng = random.Random(seed)
    registry = MetricsRegistry()
    ops = registry.counter("t_ops_total", help="ops", labelnames=("kind",))
    depth = registry.gauge("t_depth", help="depth")
    sizes = registry.histogram(
        "t_sizes", help="sizes", buckets=exponential_buckets(1.0, 2.0, 8)
    )
    for _ in range(rng.randrange(1, 60)):
        ops.labels(kind=rng.choice("abc")).inc(rng.randrange(1, 5))
    depth.set(rng.randrange(0, 100))
    for _ in range(rng.randrange(0, 40)):
        # Integer-valued observations keep float addition exact, so
        # merge associativity holds byte-for-byte (like the real
        # integer-valued analysis counters).
        sizes.observe(float(rng.randrange(0, 400)))
    return registry.snapshot()


class TestBuckets:
    def test_exponential_buckets_deterministic(self):
        assert exponential_buckets(1e-5, 2.0, 24) == exponential_buckets(1e-5, 2.0, 24)
        assert exponential_buckets(1e-5, 2.0, 24) == DEFAULT_TIME_BUCKETS

    def test_exponential_buckets_shape(self):
        bounds = exponential_buckets(1.0, 4.0, 5)
        assert bounds == (1.0, 4.0, 16.0, 64.0, 256.0)

    @pytest.mark.parametrize("args", [(0, 2.0, 4), (1.0, 1.0, 4), (1.0, 2.0, 0)])
    def test_exponential_buckets_rejects_bad_args(self, args):
        with pytest.raises(ValueError):
            exponential_buckets(*args)

    def test_histogram_bucket_assignment_deterministic(self):
        """Identically declared histograms in two registries bucket
        identical observations identically (the shard precondition)."""
        values = [random.Random(3).uniform(0, 300) for _ in range(500)]
        snaps = []
        for _ in range(2):
            registry = MetricsRegistry()
            hist = registry.histogram(
                "h", buckets=exponential_buckets(0.5, 2.0, 10)
            )
            for value in values:
                hist.observe(value)
            snaps.append(registry.snapshot())
        assert snaps[0].value("h") == snaps[1].value("h")

    def test_histogram_boundary_is_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le="1" bucket (Prometheus le semantics)
        hist.observe(2.5)  # +Inf bucket
        value = registry.snapshot().value("h")
        assert value.counts == (1, 0, 1)


class TestRegistry:
    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_redeclaration_is_idempotent(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("x",)).labels(x="1").inc()
        registry.counter("c", labelnames=("x",)).labels(x="1").inc()
        assert registry.snapshot().value("c", x="1") == 2

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(ValueError):
            registry.gauge("c")
        with pytest.raises(ValueError):
            registry.counter("c", labelnames=("x",))
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_wrong_labels_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("c", labelnames=("x",))
        with pytest.raises(ValueError):
            family.labels(y="1")

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert registry.snapshot().value("g") == 13

    def test_get_value_default(self):
        snapshot = MetricsRegistry().snapshot()
        assert snapshot.get_value("nope", default=7.0) == 7.0


class TestMerge:
    def test_merge_is_associative(self):
        a, b, c = (random_snapshot(seed) for seed in (1, 2, 3))
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert snapshot_to_json(left) == snapshot_to_json(right)
        assert snapshot_to_json(left) == snapshot_to_json(merge_snapshots([a, b, c]))

    def test_merge_many_groupings_agree(self):
        snaps = [random_snapshot(seed) for seed in range(8)]
        reference = snapshot_to_json(merge_snapshots(snaps))
        rng = random.Random(99)
        for _ in range(10):
            order = list(snaps)
            # Totals are grouping- and order-insensitive.
            rng.shuffle(order)
            half = len(order) // 2
            regrouped = merge_snapshots(
                [merge_snapshots(order[:half]), merge_snapshots(order[half:])]
            )
            assert snapshot_to_json(regrouped) == reference

    def test_merge_sums_counters_and_histograms(self):
        a, b = random_snapshot(4), random_snapshot(5)
        merged = a.merged(b)
        for snap_a, snap_b, total in [
            (a.value("t_sizes"), b.value("t_sizes"), merged.value("t_sizes"))
        ]:
            assert total.count == snap_a.count + snap_b.count
            assert total.counts == tuple(
                x + y for x, y in zip(snap_a.counts, snap_b.counts)
            )

    def test_merge_rejects_mismatched_bounds(self):
        value_a = HistogramValue(bounds=(1.0,), counts=(0, 1), total=2.0, count=1)
        value_b = HistogramValue(bounds=(2.0,), counts=(1, 0), total=1.0, count=1)
        with pytest.raises(ValueError):
            value_a.merged(value_b)

    def test_absorb_equals_snapshot_merge(self):
        snaps = [random_snapshot(seed) for seed in (11, 12, 13)]
        registry = MetricsRegistry()
        for snapshot in snaps:
            registry.absorb(snapshot)
        assert snapshot_to_json(registry.snapshot()) == snapshot_to_json(
            merge_snapshots(snaps)
        )


class TestCollectors:
    def test_store_collector_sums_instances(self):
        registry = MetricsRegistry()
        stores = [MemoryKVStore() for _ in range(2)]
        for store in stores:
            bind_store_metrics(store.metrics, "memdb", registry)
            store.put(b"k", b"v")
        stores[0].get(b"k")
        snapshot = registry.snapshot()
        assert snapshot.value("repro_store_user_puts_total", backend="memdb") == 2
        assert snapshot.value("repro_store_user_gets_total", backend="memdb") == 1

    def test_dead_collectors_are_pruned(self):
        registry = MetricsRegistry()
        store = MemoryKVStore()
        bind_store_metrics(store.metrics, "memdb", registry)
        store.put(b"k", b"v")
        del store
        import gc

        gc.collect()
        snapshot = registry.snapshot()
        assert "repro_store_user_puts_total" not in snapshot.families
        assert not registry._collectors

    def test_collector_conflict_with_family_raises(self):
        registry = MetricsRegistry()
        registry.gauge("repro_store_user_puts_total")
        store = MemoryKVStore()
        bind_store_metrics(store.metrics, "memdb", registry)
        with pytest.raises(ValueError):
            registry.snapshot()

    def test_lsm_store_binds_to_default_registry(self):
        with use_registry(MetricsRegistry()) as registry:
            store = LSMStore()
            store.put(b"a", b"1")
            store.get(b"a")
            snapshot = registry.snapshot()
            assert snapshot.value("repro_store_user_puts_total", backend="lsm") >= 1


class TestSpans:
    def test_nested_span_paths_and_fake_clock(self):
        ticks = iter(range(100))
        clock = lambda: float(next(ticks))  # noqa: E731 — injectable test clock
        registry = MetricsRegistry()
        with Span("outer", registry=registry, clock=clock):
            assert current_span_path() == "outer"
            with Span("inner", registry=registry, clock=clock):
                assert current_span_path() == "outer/inner"
        snapshot = registry.snapshot()
        assert snapshot.value(SPANS_TOTAL, span="outer") == 1
        assert snapshot.value(SPANS_TOTAL, span="outer/inner") == 1
        inner = snapshot.value(SPAN_SECONDS, span="outer/inner")
        assert inner.total == 1.0  # one fake-clock tick
        outer = snapshot.value(SPAN_SECONDS, span="outer")
        assert outer.total == 3.0  # enter..exit spans three ticks

    def test_span_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with span("boom", registry=registry):
                raise RuntimeError("body failed")
        assert registry.snapshot().value(SPANS_TOTAL, span="boom") == 1
        assert current_span_path() is None

    def test_span_rejects_slash_in_name(self):
        with pytest.raises(ValueError):
            Span("a/b")

    def test_span_uses_default_registry(self):
        with use_registry(MetricsRegistry()) as registry:
            with span("solo"):
                pass
            assert registry.snapshot().value(SPANS_TOTAL, span="solo") == 1

    def test_out_of_order_exit_raises(self):
        registry = MetricsRegistry()
        outer = Span("outer", registry=registry)
        inner = Span("inner", registry=registry)
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError):
            outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        outer.__exit__(None, None, None)


PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>-?(?:\d+(?:\.\d+)?(?:e-?\d+)?|\+Inf|-Inf|NaN))$"
)


def parse_prometheus_text(text: str) -> dict:
    """Validate and parse exposition text into {name: {labels: value}}."""
    types: dict[str, str] = {}
    samples: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            types[name] = kind
            continue
        match = PROM_SAMPLE_RE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert base in types or name in types, f"sample before TYPE: {line!r}"
        samples.setdefault(name, {})[match.group("labels") or ""] = float(
            match.group("value").replace("+Inf", "inf")
        )
    return {"types": types, "samples": samples}


class TestPrometheusExport:
    def test_text_parses_and_is_consistent(self):
        snapshot = random_snapshot(21)
        parsed = parse_prometheus_text(to_prometheus_text(snapshot))
        assert parsed["types"]["t_ops_total"] == "counter"
        assert parsed["types"]["t_depth"] == "gauge"
        assert parsed["types"]["t_sizes"] == "histogram"
        # Histogram buckets are cumulative and monotonically non-decreasing,
        # ending at the +Inf bucket == _count.
        buckets = parsed["samples"]["t_sizes_bucket"]
        ordered = sorted(
            buckets.items(), key=lambda kv: float(kv[0].split('"')[1].replace("+Inf", "inf"))
        )
        counts = [count for _, count in ordered]
        assert counts == sorted(counts)
        assert counts[-1] == parsed["samples"]["t_sizes_count"][""]
        hist = snapshot.value("t_sizes")
        assert parsed["samples"]["t_sizes_sum"][""] == pytest.approx(hist.total)
        # Counter totals survive the render/parse round trip.
        for key, value in snapshot.family("t_ops_total").series.items():
            assert parsed["samples"]["t_ops_total"][f'kind="{key[0]}"'] == value

    def test_rendering_is_deterministic(self):
        assert to_prometheus_text(random_snapshot(8)) == to_prometheus_text(
            random_snapshot(8)
        )

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("x",)).labels(x='a"b\\c\nd').inc()
        text = to_prometheus_text(registry.snapshot())
        assert '{x="a\\"b\\\\c\\nd"}' in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus_text(RegistrySnapshot()) == ""


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        snapshot = random_snapshot(31)
        path = tmp_path / "metrics.json"
        write_snapshot_json(path, snapshot)
        restored = read_snapshot_json(path)
        assert snapshot_to_json(restored) == snapshot_to_json(snapshot)
        assert to_prometheus_text(restored) == to_prometheus_text(snapshot)

    def test_format_tag_is_validated(self):
        with pytest.raises(ValueError):
            snapshot_from_json({"format": "something-else", "families": []})
        with pytest.raises(ValueError):
            snapshot_from_json([1, 2, 3])

    def test_json_is_deterministic(self, tmp_path):
        paths = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            write_snapshot_json(path, random_snapshot(55))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]
        json.loads(paths[0])  # valid JSON document


class TestProcessRegistry:
    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_use_registry_restores_on_exit(self):
        before = get_registry()
        with use_registry(MetricsRegistry()) as scoped:
            assert get_registry() is scoped
        assert get_registry() is before

    def test_null_registry_records_nothing(self):
        registry = NullRegistry()
        registry.counter("c", labelnames=("x",)).labels(x="1").inc()
        registry.histogram("h").observe(1.0)
        registry.register_object_collector(object(), lambda owner: [])
        registry.absorb(random_snapshot(1))
        assert registry.snapshot().families == {}
        assert NULL_REGISTRY.snapshot().families == {}


class TestSampleFolding:
    def test_samples_with_same_labels_sum(self):
        registry = MetricsRegistry()

        class Owner:
            pass

        owners = [Owner(), Owner()]
        for owner in owners:
            registry.register_object_collector(
                owner,
                lambda o: [
                    Sample(
                        name="dup_total",
                        kind=COUNTER,
                        labels=(("k", "v"),),
                        value=3.0,
                    )
                ],
            )
        assert registry.snapshot().value("dup_total", k="v") == 6.0
        del owners

    def test_gauge_samples_supported(self):
        registry = MetricsRegistry()

        class Owner:
            pass

        owner = Owner()
        registry.register_object_collector(
            owner,
            lambda o: [Sample(name="g", kind=GAUGE, labels=(), value=4.0)],
        )
        assert registry.snapshot().value("g") == 4.0
        del owner


class TestSnapshotDiff:
    """diff_snapshots / counter_deltas — the bench runner's attribution
    primitive: activity between two snapshots of one registry."""

    def _registry_at_two_points(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", labelnames=("kind",))
        gauge = registry.gauge("level")
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        counter.labels(kind="read").inc(5)
        gauge.set(2.0)
        hist.observe(0.05)
        before = registry.snapshot()
        counter.labels(kind="read").inc(3)
        counter.labels(kind="write").inc(7)
        gauge.set(9.0)
        hist.observe(0.5)
        hist.observe(0.5)
        after = registry.snapshot()
        return before, after

    def test_counters_subtract(self):
        before, after = self._registry_at_two_points()
        delta = diff_snapshots(before, after)
        assert delta.value("events_total", kind="read") == 3.0
        # series absent from `before` pass through whole
        assert delta.value("events_total", kind="write") == 7.0

    def test_gauges_keep_after_level(self):
        before, after = self._registry_at_two_points()
        assert diff_snapshots(before, after).value("level") == 9.0

    def test_histograms_subtract_per_bucket(self):
        before, after = self._registry_at_two_points()
        hist = diff_snapshots(before, after).families["latency_seconds"].series[()]
        assert hist.count == 2
        assert hist.total == pytest.approx(1.0)
        assert hist.counts == (0, 2, 0)  # both new observations in (0.1, 1.0]

    def test_counter_regression_clamped_to_zero(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(10)
        before = registry.snapshot()
        fresh = MetricsRegistry()
        fresh.counter("c_total").inc(4)
        delta = diff_snapshots(before, fresh.snapshot())
        assert delta.value("c_total") == 0.0

    def test_diff_of_identical_snapshots_is_zero(self):
        _, after = self._registry_at_two_points()
        delta = diff_snapshots(after, after)
        assert counter_deltas(delta) == {}

    def test_counter_deltas_flattens_sorted(self):
        before, after = self._registry_at_two_points()
        flat = counter_deltas(diff_snapshots(before, after))
        assert flat == {
            "events_total{kind=read}": 3.0,
            "events_total{kind=write}": 7.0,
            "latency_seconds_count": 2.0,
            "latency_seconds_sum": pytest.approx(1.0),
        }
        assert list(flat) == sorted(flat)


class TestReplayMetricsMerge:
    """The replay engine's families must merge associatively by name.

    Replay latency histograms use *fixed* exponential buckets
    (:data:`repro.replay.metrics.REPLAY_LATENCY_BUCKETS`), never
    data-derived bounds — that is what lets ``repro stats`` fold any
    set of ``repro replay --metrics-out`` dumps into one view.
    """

    def _replay_snapshot(self, tmp_path, seed: int, workers: int) -> RegistrySnapshot:
        import random as _random

        from repro.core.trace import OpType, TraceRecord, write_trace_v2
        from repro.replay import ReplayConfig, replay_trace

        rng = _random.Random(seed)
        keys = [b"A" + rng.randbytes(6) for _ in range(40)]
        records = [
            TraceRecord(
                rng.choice((OpType.WRITE, OpType.READ, OpType.DELETE)),
                rng.choice(keys),
                rng.randrange(0, 64),
                0,
            )
            for _ in range(400)
        ]
        records.append(TraceRecord(OpType.SCAN, b"A", 0, 0))
        path = tmp_path / f"replay-{seed}-{workers}.v2"
        write_trace_v2(path, records, chunk_size=128)
        registry = MetricsRegistry()
        replay_trace(
            path,
            ReplayConfig(workers=workers, fingerprint=False),
            registry=registry,
        )
        return registry.snapshot()

    def test_replay_buckets_are_fixed_constants(self):
        from repro.replay import REPLAY_LATENCY_BUCKETS

        assert REPLAY_LATENCY_BUCKETS == exponential_buckets(1e-7, 2.0, 28)

    def test_replay_snapshots_merge_associatively(self, tmp_path):
        snaps = [
            self._replay_snapshot(tmp_path, seed=1, workers=1),
            self._replay_snapshot(tmp_path, seed=2, workers=2),
            self._replay_snapshot(tmp_path, seed=3, workers=4),
        ]
        a, b, c = snaps
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert snapshot_to_json(left) == snapshot_to_json(right)
        merged = merge_snapshots(snaps)
        # counters sum across runs
        total = sum(snap.get_value("repro_replay_records_total") for snap in snaps)
        assert merged.value("repro_replay_records_total") == total
        # fixed-bucket histograms merge per-op
        for op in ("write", "read", "delete"):
            counts = [snap.value("repro_replay_latency_seconds", op=op) for snap in snaps]
            merged_hist = merged.value("repro_replay_latency_seconds", op=op)
            assert merged_hist.count == sum(h.count for h in counts)
            assert merged_hist.bounds == counts[0].bounds

    def test_replay_metric_names_present(self, tmp_path):
        snap = self._replay_snapshot(tmp_path, seed=9, workers=2)
        for name in (
            "repro_replay_ops_total",
            "repro_replay_bytes_total",
            "repro_replay_latency_seconds",
            "repro_replay_class_ops_total",
            "repro_replay_records_total",
            "repro_replay_barriers_total",
            "repro_replay_queue_depth",
        ):
            assert name in snap.families, name

    def test_replay_json_roundtrip_then_merge(self, tmp_path):
        """The exact `repro stats` path: JSON out, parse back, merge."""
        a = self._replay_snapshot(tmp_path, seed=21, workers=1)
        b = self._replay_snapshot(tmp_path, seed=22, workers=2)
        a2 = snapshot_from_json(snapshot_to_json(a))
        b2 = snapshot_from_json(snapshot_to_json(b))
        assert snapshot_to_json(a2.merged(b2)) == snapshot_to_json(a.merged(b))
