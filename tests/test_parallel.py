"""Chunked and parallel analysis equivalence tests.

Every mergeable analyzer's ``consume_chunk`` fast path and ``merge``
reduction must reproduce the record-at-a-time reference results exactly
— that guarantee is what lets :func:`repro.core.parallel.analyze_trace`
shard traces over worker processes.
"""

from __future__ import annotations

import json
import math
import os
import random

import numpy as np
import pytest

from repro.core.analysis import TraceAnalysis
from repro.core.blockstats import BlockStatsAnalyzer
from repro.core.classes import CLASS_LIST, KVClass
from repro.core.columnar import ColumnarTrace, chunk_records
from repro.core.correlation import CorrelationAnalyzer, CorrelationConfig
from repro.core.iostats import IOStatsAnalyzer
from repro.core.opdist import OpDistAnalyzer
from repro.core.parallel import (
    RetryPolicy,
    WorkerFault,
    analyze_chunks,
    analyze_trace,
    default_workers,
)
from repro.core.sizes import RunningStats, SizeAnalyzer
from repro.core.trace import (
    OpType,
    TraceRecord,
    read_trace_footer,
    write_trace,
    write_trace_v2,
)
from repro.errors import AnalysisError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, snapshot_to_json


def _random_records(n=3000, seed=11, num_blocks=37):
    """A synthetic trace exercising every op, many classes, interleaved
    blocks, and repeated keys (so interning and per-key counters work)."""
    rng = random.Random(seed)
    prefixes = [b"A", b"O", b"a", b"o", b"h", b"l", b"c", b"B", b"H", b"t"]
    singles = [b"LastHeader", b"LastBlock", b"SnapshotRoot", b"ethereum-config-x"]
    keys = [
        rng.choice(prefixes) + rng.randbytes(rng.randint(1, 12))
        for _ in range(n // 6)
    ] + singles
    records = []
    for _ in range(n):
        records.append(
            TraceRecord(
                op=OpType(rng.randrange(5)),
                key=rng.choice(keys),
                value_size=rng.randrange(4096),
                block=rng.randrange(num_blocks),
            )
        )
    return records


def _assert_opdist_equal(a: OpDistAnalyzer, b: OpDistAnalyzer) -> None:
    assert a.total_ops == b.total_ops
    for kv_class in CLASS_LIST:
        da, db = a.distribution(kv_class), b.distribution(kv_class)
        assert (da.writes, da.updates, da.reads, da.scans, da.deletes) == (
            db.writes,
            db.updates,
            db.reads,
            db.scans,
            db.deletes,
        ), kv_class
        aa, ab = a.activity(kv_class), b.activity(kv_class)
        assert aa.keys_seen == ab.keys_seen, kv_class
        assert aa.read_counts == ab.read_counts, kv_class
        assert aa.update_counts == ab.update_counts, kv_class
        assert aa.delete_counts == ab.delete_counts, kv_class
        assert aa.write_counts == ab.write_counts, kv_class


def _assert_blockstats_equal(a: BlockStatsAnalyzer, b: BlockStatsAnalyzer) -> None:
    assert a.num_blocks == b.num_blocks
    for pa, pb in zip(a.profiles(), b.profiles()):
        assert (
            pa.block,
            pa.reads,
            pa.puts,
            pa.deletes,
            pa.scans,
            pa.reads_after_first_put,
            pa._saw_put,
        ) == (
            pb.block,
            pb.reads,
            pb.puts,
            pb.deletes,
            pb.scans,
            pb.reads_after_first_put,
            pb._saw_put,
        ), pa.block


def _assert_iostats_equal(a: IOStatsAnalyzer, b: IOStatsAnalyzer) -> None:
    for kv_class in CLASS_LIST:
        sa, sb = a.stats_for(kv_class), b.stats_for(kv_class)
        assert (
            sa.bytes_read,
            sa.bytes_written,
            sa.bytes_deleted_keys,
            sa.bytes_scanned,
            sa.ops,
        ) == (
            sb.bytes_read,
            sb.bytes_written,
            sb.bytes_deleted_keys,
            sb.bytes_scanned,
            sb.ops,
        ), kv_class


@pytest.fixture(scope="module")
def records():
    return _random_records()


@pytest.fixture(scope="module")
def reference(records):
    return {
        "opdist": OpDistAnalyzer(track_keys=True).consume(records),
        "blockstats": BlockStatsAnalyzer().consume(records),
        "iostats": IOStatsAnalyzer().consume(records),
    }


class TestChunkedEquivalence:
    """consume_chunk over chunked records == consume over the records."""

    @pytest.mark.parametrize("chunk_size", [1, 7, 256, 10_000])
    def test_opdist(self, records, reference, chunk_size):
        chunked = OpDistAnalyzer(track_keys=True)
        for chunk in chunk_records(records, chunk_size):
            chunked.consume_chunk(chunk)
        _assert_opdist_equal(chunked, reference["opdist"])

    @pytest.mark.parametrize("chunk_size", [1, 7, 256, 10_000])
    def test_blockstats(self, records, reference, chunk_size):
        chunked = BlockStatsAnalyzer()
        for chunk in chunk_records(records, chunk_size):
            chunked.consume_chunk(chunk)
        _assert_blockstats_equal(chunked, reference["blockstats"])

    @pytest.mark.parametrize("chunk_size", [1, 7, 256, 10_000])
    def test_iostats(self, records, reference, chunk_size):
        chunked = IOStatsAnalyzer()
        for chunk in chunk_records(records, chunk_size):
            chunked.consume_chunk(chunk)
        _assert_iostats_equal(chunked, reference["iostats"])

    def test_opdist_untracked(self, records):
        ref = OpDistAnalyzer(track_keys=False).consume(records)
        chunked = OpDistAnalyzer(track_keys=False)
        for chunk in chunk_records(records, 333):
            chunked.consume_chunk(chunk)
        assert chunked.total_ops == ref.total_ops
        for kv_class in CLASS_LIST:
            assert (
                chunked.distribution(kv_class).total
                == ref.distribution(kv_class).total
            )

    def test_correlation(self, records):
        config = CorrelationConfig(op=OpType.READ, distances=(0, 1, 4, 16))
        ref = CorrelationAnalyzer(config).consume(records)
        chunked = CorrelationAnalyzer(config).consume_chunks(
            chunk_records(records, 191)
        )
        assert chunked._keys == ref._keys
        ref_results = ref.compute()
        for distance, result in chunked.compute().items():
            assert result.class_pair_counts == ref_results[distance].class_pair_counts

    def test_correlation_max_ops_cutoff(self, records):
        config = CorrelationConfig(op=OpType.READ, distances=(0,), max_ops=100)
        ref = CorrelationAnalyzer(config).consume(records)
        chunked = CorrelationAnalyzer(config).consume_chunks(
            chunk_records(records, 37)
        )
        assert chunked.num_ops == ref.num_ops == 100
        assert chunked._keys == ref._keys


class TestMerge:
    """Splitting a trace into shards and merging == one sequential pass."""

    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_all_analyzers(self, records, reference, num_shards):
        shard_size = math.ceil(len(records) / num_shards)
        shards = [
            records[i : i + shard_size] for i in range(0, len(records), shard_size)
        ]
        merged = {
            "opdist": OpDistAnalyzer(track_keys=True),
            "blockstats": BlockStatsAnalyzer(),
            "iostats": IOStatsAnalyzer(),
        }
        for shard in shards:
            merged["opdist"].merge(OpDistAnalyzer(track_keys=True).consume(shard))
            merged["blockstats"].merge(BlockStatsAnalyzer().consume(shard))
            merged["iostats"].merge(IOStatsAnalyzer().consume(shard))
        _assert_opdist_equal(merged["opdist"], reference["opdist"])
        _assert_blockstats_equal(merged["blockstats"], reference["blockstats"])
        _assert_iostats_equal(merged["iostats"], reference["iostats"])

    def test_blockstats_merge_across_block_spanning_shards(self):
        # one block whose reads/puts straddle the shard boundary: the
        # merge must know the earlier shard already saw a put
        records = [
            TraceRecord(OpType.READ, b"hX", 1, 5),
            TraceRecord(OpType.WRITE, b"hX", 1, 5),
            TraceRecord(OpType.READ, b"hY", 1, 5),  # after first put
        ] * 2
        reference = BlockStatsAnalyzer().consume(records)
        merged = BlockStatsAnalyzer().consume(records[:3])
        merged.merge(BlockStatsAnalyzer().consume(records[3:]))
        _assert_blockstats_equal(merged, reference)
        assert merged.profile(5).reads_after_first_put == 3

    def test_opdist_merge_track_keys_mismatch(self):
        with pytest.raises(ValueError):
            OpDistAnalyzer(track_keys=True).merge(OpDistAnalyzer(track_keys=False))


class TestSizeAnalyzerBatch:
    def test_batch_matches_sequential(self):
        rng = random.Random(3)
        pairs = [
            (rng.choice([b"A", b"a", b"h", b"c"]) + rng.randbytes(8), rng.randrange(512))
            for _ in range(2000)
        ]
        ref = SizeAnalyzer()
        for key, size in pairs:
            ref.add_pair(key, size)
        batched = SizeAnalyzer()
        batched.add_pairs_batch([k for k, _ in pairs], [s for _, s in pairs])
        assert batched.total_pairs == ref.total_pairs
        for kv_class in CLASS_LIST:
            sa, sb = batched.stats_for(kv_class), ref.stats_for(kv_class)
            assert sa.num_pairs == sb.num_pairs
            assert sa.kv_size_histogram == sb.kv_size_histogram
            for stat_a, stat_b in (
                (sa.key_size, sb.key_size),
                (sa.value_size, sb.value_size),
            ):
                assert stat_a.count == stat_b.count
                assert stat_a.minimum == stat_b.minimum
                assert stat_a.maximum == stat_b.maximum
                assert stat_a.mean == pytest.approx(stat_b.mean)
                assert stat_a.variance == pytest.approx(stat_b.variance)

    def test_running_stats_merge(self):
        values = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5], dtype=np.int64)
        ref = RunningStats()
        for value in values.tolist():
            ref.add(value)
        merged = RunningStats()
        merged.add_batch(values[:4])
        other = RunningStats()
        other.add_batch(values[4:])
        merged.merge(other)
        assert merged.count == ref.count
        assert merged.minimum == ref.minimum
        assert merged.maximum == ref.maximum
        assert merged.mean == pytest.approx(ref.mean)
        assert merged.variance == pytest.approx(ref.variance)


class TestAnalyzeTrace:
    def test_sequential_over_records_and_columnar(self, records, reference):
        for source in (records, ColumnarTrace.from_records(records, chunk_size=311)):
            results = analyze_trace(source, workers=1, chunk_size=311)
            _assert_opdist_equal(results["opdist"], reference["opdist"])
            _assert_blockstats_equal(results["blockstats"], reference["blockstats"])
            _assert_iostats_equal(results["iostats"], reference["iostats"])

    @pytest.mark.parametrize("writer", [write_trace, write_trace_v2])
    def test_sequential_over_files(self, tmp_path, records, reference, writer):
        path = tmp_path / "trace.bin"
        writer(path, records)
        results = analyze_trace(path, workers=1, chunk_size=250)
        _assert_opdist_equal(results["opdist"], reference["opdist"])
        _assert_blockstats_equal(results["blockstats"], reference["blockstats"])
        _assert_iostats_equal(results["iostats"], reference["iostats"])

    def test_parallel_in_memory(self, records, reference):
        results = analyze_trace(
            ColumnarTrace.from_records(records, chunk_size=173), workers=2
        )
        _assert_opdist_equal(results["opdist"], reference["opdist"])
        _assert_blockstats_equal(results["blockstats"], reference["blockstats"])
        _assert_iostats_equal(results["iostats"], reference["iostats"])

    def test_parallel_over_v2_file(self, tmp_path, records, reference):
        # workers shard by footer offsets and read straight from disk
        path = tmp_path / "trace.v2"
        write_trace_v2(path, records, chunk_size=173)
        results = analyze_trace(path, workers=3)
        _assert_opdist_equal(results["opdist"], reference["opdist"])
        _assert_blockstats_equal(results["blockstats"], reference["blockstats"])
        _assert_iostats_equal(results["iostats"], reference["iostats"])

    def test_parallel_over_v1_file(self, tmp_path, records, reference):
        # no footer: the trace is chunked in-process and shards pickled
        path = tmp_path / "trace.bin"
        write_trace(path, records)
        results = analyze_trace(path, workers=2, chunk_size=400)
        _assert_opdist_equal(results["opdist"], reference["opdist"])

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.v2"
        write_trace_v2(path, [])
        for workers in (1, 2):
            results = analyze_trace(path, workers=workers)
            assert results["opdist"].total_ops == 0
            assert results["blockstats"].num_blocks == 0

    def test_analyzer_subset_and_validation(self, records):
        results = analyze_chunks(chunk_records(records, 500), analyzers=("opdist",))
        assert set(results) == {"opdist"}
        with pytest.raises(ValueError):
            analyze_trace(records, analyzers=("nope",))
        with pytest.raises(ValueError):
            analyze_trace(records, workers=0)

    def test_default_workers(self):
        assert default_workers() >= 1


class TestTraceAnalysisInputs:
    """TraceAnalysis accepts records, columnar traces, and file paths."""

    def test_path_matches_records(self, tmp_path, records):
        path = tmp_path / "trace.v2"
        write_trace_v2(path, records, chunk_size=500)
        from_records = TraceAnalysis("a", records)
        from_path = TraceAnalysis("b", path)
        _assert_opdist_equal(from_path.opdist, from_records.opdist)
        assert from_path.num_records == len(records)
        assert from_path.records == records

    def test_columnar_input_retained(self, records):
        trace = ColumnarTrace.from_records(records, chunk_size=700)
        analysis = TraceAnalysis("c", trace)
        assert analysis.trace is trace
        ref = CorrelationAnalyzer(
            CorrelationConfig(op=OpType.READ, distances=(0, 4))
        ).consume(records)
        results = analysis.correlation(OpType.READ)
        ref_results = ref.compute()
        # TraceAnalysis uses DEFAULT_DISTANCES; compare the shared ones
        for distance in (0, 4):
            assert (
                results[distance].class_pair_counts
                == ref_results[distance].class_pair_counts
            )

    def test_read_ratio_unchanged(self, records):
        analysis = TraceAnalysis("d", records)
        ratio = analysis.read_ratio(KVClass.SNAPSHOT_ACCOUNT)
        assert 0.0 <= ratio <= 100.0


class TestWorkerDeath:
    """Scheduler resilience: a worker process dying mid-shard must not
    change results (requeue) or sink the run (serial fallback)."""

    FAST_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.01)

    @pytest.fixture()
    def trace_path(self, tmp_path, records):
        path = tmp_path / "trace.v2"
        write_trace_v2(path, records, chunk_size=173)
        return path

    def test_transient_kill_requeues_and_matches_serial(
        self, tmp_path, trace_path, reference
    ):
        # the first worker to pick up shard 1 dies; the requeued attempt
        # survives (one-shot trip file) and results match exactly
        fault = WorkerFault(
            shard_index=1,
            parent_pid=os.getpid(),
            trip_path=str(tmp_path / "trip"),
        )
        results = analyze_trace(
            trace_path, workers=4, fault=fault, retry=self.FAST_RETRY
        )
        _assert_opdist_equal(results["opdist"], reference["opdist"])
        _assert_blockstats_equal(results["blockstats"], reference["blockstats"])
        _assert_iostats_equal(results["iostats"], reference["iostats"])
        assert (tmp_path / "trip").exists()  # the fault really fired

    def test_poisoned_shard_falls_back_to_serial(self, trace_path, reference):
        # no trip file: every worker touching shard 2 dies, so after the
        # retries it must run serially in this process (where the fault
        # latch is inert) and still produce exact results
        fault = WorkerFault(shard_index=2, parent_pid=os.getpid())
        results = analyze_trace(
            trace_path, workers=4, fault=fault, retry=self.FAST_RETRY
        )
        _assert_opdist_equal(results["opdist"], reference["opdist"])
        _assert_blockstats_equal(results["blockstats"], reference["blockstats"])
        _assert_iostats_equal(results["iostats"], reference["iostats"])

    def test_fallback_disabled_raises(self, trace_path):
        fault = WorkerFault(shard_index=0, parent_pid=os.getpid())
        with pytest.raises(AnalysisError, match="kept killing"):
            analyze_trace(
                trace_path,
                workers=4,
                fault=fault,
                retry=RetryPolicy(
                    max_retries=1, backoff_base_s=0.01, serial_fallback=False
                ),
            )

    def test_deterministic_worker_exception_not_retried(
        self, tmp_path, records, reference
    ):
        # a corrupt chunk raises TraceFormatError in the worker — that is
        # deterministic, so it surfaces as AnalysisError immediately;
        # lenient mode instead skips the chunk and completes
        path = tmp_path / "corrupt.v2"
        write_trace_v2(path, records, chunk_size=173)
        footer = read_trace_footer(path)
        offset, _ = footer.chunks[2]
        data = bytearray(path.read_bytes())
        data[offset + 30] ^= 0xFF
        path.write_bytes(bytes(data))

        with pytest.raises(AnalysisError, match="shard"):
            analyze_trace(path, workers=3, retry=self.FAST_RETRY)

        results = analyze_trace(path, workers=3, lenient=True, retry=self.FAST_RETRY)
        lost = reference["opdist"].total_ops - results["opdist"].total_ops
        assert 0 < lost <= 173  # exactly the corrupt chunk is missing

    def test_worker_fault_inert_in_parent(self):
        fault = WorkerFault(shard_index=0, parent_pid=os.getpid())
        fault.maybe_trip(0)  # same pid: must not exit
        fault.maybe_trip(1)  # different shard: must not exit


class TestMetricsDifferential:
    """A sharded run's merged registry must equal the serial run's —
    byte-identical after JSON serialization, not merely approximately.

    Timing metrics (``repro_analysis_shard_seconds`` and the shard
    counter) exist only when shards ran, so the comparison covers the
    deterministic progress counters, which both paths increment once
    per chunk/record.
    """

    DETERMINISTIC = ("repro_analysis_chunks_total", "repro_analysis_records_total")

    def _deterministic_json(self, registry: MetricsRegistry) -> str:
        data = snapshot_to_json(registry.snapshot())
        data["families"] = [
            family
            for family in data["families"]
            if family["name"] in self.DETERMINISTIC
        ]
        return json.dumps(data, sort_keys=True)

    @pytest.fixture()
    def trace_path(self, tmp_path, records):
        path = tmp_path / "trace.v2"
        write_trace_v2(path, records, chunk_size=173)
        return path

    def test_sharded_registry_matches_serial_byte_identical(
        self, trace_path, records
    ):
        serial_registry = MetricsRegistry()
        serial = analyze_trace(trace_path, workers=1, registry=serial_registry)
        parallel_registry = MetricsRegistry()
        parallel = analyze_trace(trace_path, workers=3, registry=parallel_registry)

        assert self._deterministic_json(serial_registry) == self._deterministic_json(
            parallel_registry
        )
        snapshot = parallel_registry.snapshot()
        footer = read_trace_footer(trace_path)
        assert snapshot.value("repro_analysis_chunks_total") == len(footer.chunks)
        assert snapshot.value("repro_analysis_records_total") == len(records)

        # The analyzer aggregates must be byte-identical too, rendered.
        from repro.core.report import render_op_table

        assert render_op_table(serial["opdist"], "t") == render_op_table(
            parallel["opdist"], "t"
        )

    def test_metrics_survive_worker_death_requeue(self, tmp_path, trace_path):
        serial_registry = MetricsRegistry()
        analyze_trace(trace_path, workers=1, registry=serial_registry)
        fault = WorkerFault(
            shard_index=1, parent_pid=os.getpid(), trip_path=str(tmp_path / "trip")
        )
        parallel_registry = MetricsRegistry()
        analyze_trace(
            trace_path,
            workers=4,
            fault=fault,
            retry=RetryPolicy(max_retries=2, backoff_base_s=0.01),
            registry=parallel_registry,
        )
        # The requeued shard's snapshot is absorbed exactly once, so the
        # progress counters still match the serial run.
        assert self._deterministic_json(serial_registry) == self._deterministic_json(
            parallel_registry
        )
        snapshot = parallel_registry.snapshot()
        assert snapshot.value("repro_analysis_worker_deaths_total") >= 1
        assert snapshot.value("repro_analysis_requeues_total") >= 1

    def test_serial_fallback_counted(self, trace_path):
        fault = WorkerFault(shard_index=2, parent_pid=os.getpid())
        registry = MetricsRegistry()
        analyze_trace(
            trace_path,
            workers=4,
            fault=fault,
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.01),
            registry=registry,
        )
        # At minimum the poisoned shard fell back; innocent shards that
        # kept getting caught in the broken pools may have as well.
        snapshot = registry.snapshot()
        assert snapshot.value("repro_analysis_serial_fallbacks_total") >= 1
        assert snapshot.value("repro_analysis_shards_total") == 4

    def test_null_registry_opt_out(self, records):
        results = analyze_trace(records, workers=1, registry=NULL_REGISTRY)
        assert results["opdist"].total_ops == len(records)
        assert NULL_REGISTRY.snapshot().families == {}

    def test_in_memory_sources_match_too(self, records):
        serial_registry = MetricsRegistry()
        analyze_trace(records, workers=1, chunk_size=311, registry=serial_registry)
        parallel_registry = MetricsRegistry()
        analyze_trace(
            ColumnarTrace.from_records(records, chunk_size=311),
            workers=2,
            registry=parallel_registry,
        )
        assert self._deterministic_json(serial_registry) == self._deterministic_json(
            parallel_registry
        )
