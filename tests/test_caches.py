"""LRU cache and per-class cache-set tests."""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.gethdb.caches import CACHE_ENTRY_OVERHEAD, CacheBudget, CacheSet, LRUCache


class TestLRUCache:
    def test_hit_after_put(self):
        cache = LRUCache(4096)
        cache.put(b"k", b"v")
        assert cache.get(b"k") == b"v"
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = LRUCache(4096)
        assert cache.get(b"absent") is None
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        entry = CACHE_ENTRY_OVERHEAD + 2  # 1-byte key + 1-byte value
        cache = LRUCache(entry * 2)
        cache.put(b"a", b"1")
        cache.put(b"b", b"2")
        cache.get(b"a")  # a becomes most-recent
        cache.put(b"c", b"3")  # evicts b
        assert cache.get(b"b") is None
        assert cache.get(b"a") == b"1"
        assert cache.evictions == 1

    def test_byte_budget_respected(self):
        cache = LRUCache(1000)
        for i in range(100):
            cache.put(b"key%02d" % i, b"v" * 20)
        assert cache.used_bytes <= 1000

    def test_oversized_entry_not_admitted(self):
        cache = LRUCache(64)
        cache.put(b"k", b"v" * 1000)
        assert cache.get(b"k") is None
        assert len(cache) == 0

    def test_overwrite_adjusts_usage(self):
        cache = LRUCache(4096)
        cache.put(b"k", b"v" * 100)
        used_large = cache.used_bytes
        cache.put(b"k", b"v")
        assert cache.used_bytes < used_large
        assert len(cache) == 1

    def test_invalidate(self):
        cache = LRUCache(4096)
        cache.put(b"k", b"v")
        cache.invalidate(b"k")
        assert cache.get(b"k") is None
        assert cache.used_bytes == 0

    def test_zero_capacity_never_stores(self):
        cache = LRUCache(0)
        cache.put(b"k", b"v")
        assert cache.get(b"k") is None

    def test_hit_rate(self):
        cache = LRUCache(4096)
        cache.put(b"k", b"v")
        cache.get(b"k")
        cache.get(b"absent")
        assert cache.hit_rate == 0.5


class TestCacheSet:
    def test_cached_classes(self):
        cache_set = CacheSet(CacheBudget(1024 * 1024))
        for kv_class in (
            KVClass.TRIE_NODE_ACCOUNT,
            KVClass.TRIE_NODE_STORAGE,
            KVClass.SNAPSHOT_ACCOUNT,
            KVClass.SNAPSHOT_STORAGE,
            KVClass.HEADER_NUMBER,
        ):
            assert cache_set.cache_for(kv_class) is not None

    def test_uncached_classes(self):
        cache_set = CacheSet(CacheBudget(1024 * 1024))
        # Per the paper's traces, Code and block data reads are not
        # absorbed by caching (same absolute counts in both traces).
        for kv_class in (
            KVClass.CODE,
            KVClass.BLOCK_HEADER,
            KVClass.BLOCK_BODY,
            KVClass.TX_LOOKUP,
            KVClass.LAST_HEADER,
        ):
            assert cache_set.cache_for(kv_class) is None

    def test_budget_split(self):
        total = 1000 * 1000
        cache_set = CacheSet(CacheBudget(total))
        capacities = sum(
            cache.capacity_bytes
            for cache in (
                cache_set.cache_for(KVClass.TRIE_NODE_ACCOUNT),
                cache_set.cache_for(KVClass.TRIE_NODE_STORAGE),
                cache_set.cache_for(KVClass.SNAPSHOT_ACCOUNT),
                cache_set.cache_for(KVClass.SNAPSHOT_STORAGE),
                cache_set.cache_for(KVClass.HEADER_NUMBER),
            )
        )
        assert capacities <= total

    def test_stats_shape(self):
        cache_set = CacheSet(CacheBudget(64 * 1024))
        cache = cache_set.cache_for(KVClass.TRIE_NODE_ACCOUNT)
        cache.put(b"A\x01", b"node")
        cache.get(b"A\x01")
        stats = cache_set.stats()
        assert stats[KVClass.TRIE_NODE_ACCOUNT]["hits"] == 1
        assert stats[KVClass.TRIE_NODE_ACCOUNT]["entries"] == 1
