"""Fault-plan and fault-injecting-store unit tests.

The crash-consistency *sweep* lives in ``tests/test_crashtest.py``;
this module covers the mechanics underneath it: deterministic rule
matching, one-shot firing, torn-commit prefix application, and the
KVStore wrapper.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CrashPoint,
    FaultInjectionError,
    SimulatedCrash,
    TransientIOError,
)
from repro.faults import FaultInjectingStore, FaultKind, FaultPlan, FaultRule
from repro.gethdb.database import DBConfig, GethDatabase
from repro.kvstore.memdb import MemoryKVStore


class TestFaultRule:
    def test_point_matching_gated_by_min_block(self):
        rule = FaultRule(
            kind=FaultKind.KILL, point=CrashPoint.FREEZE_BEFORE, min_block=10
        )
        assert not rule.matches_point(CrashPoint.FREEZE_BEFORE, 9)
        assert rule.matches_point(CrashPoint.FREEZE_BEFORE, 10)
        assert not rule.matches_point(CrashPoint.FREEZE_AFTER, 10)

    def test_fired_rule_never_matches_again(self):
        rule = FaultRule(kind=FaultKind.KILL, point=CrashPoint.WRITE_NOW)
        assert rule.matches_point(CrashPoint.WRITE_NOW, 0)
        assert rule.tick()
        assert not rule.matches_point(CrashPoint.WRITE_NOW, 0)

    def test_op_wildcard(self):
        rule = FaultRule(kind=FaultKind.IO_ERROR, op="*")
        assert rule.matches_op("get", 0)
        assert rule.matches_op("scan", 0)
        specific = FaultRule(kind=FaultKind.IO_ERROR, op="put")
        assert specific.matches_op("put", 0)
        assert not specific.matches_op("get", 0)

    def test_at_count_fires_on_nth_event(self):
        rule = FaultRule(kind=FaultKind.KILL, point=CrashPoint.WRITE_NOW, at_count=3)
        assert not rule.tick()
        assert not rule.tick()
        assert rule.tick()


class TestFaultPlan:
    def test_kill_at_raises_and_records_event(self):
        plan = FaultPlan.kill_at(CrashPoint.TRIE_FLUSH_BEFORE, min_block=5)
        plan.on_crash_point(CrashPoint.TRIE_FLUSH_BEFORE, block=4)  # gated
        with pytest.raises(SimulatedCrash) as exc:
            plan.on_crash_point(CrashPoint.TRIE_FLUSH_BEFORE, block=5)
        assert exc.value.point is CrashPoint.TRIE_FLUSH_BEFORE
        assert exc.value.block == 5
        assert len(plan.events) == 1
        assert plan.events[0].site == CrashPoint.TRIE_FLUSH_BEFORE.value
        # one-shot: the same point never fires twice
        plan.on_crash_point(CrashPoint.TRIE_FLUSH_BEFORE, block=6)
        assert plan.pending_rules == 0

    def test_disarm_suppresses_everything(self):
        plan = FaultPlan.kill_at(CrashPoint.WRITE_NOW)
        plan.disarm()
        plan.on_crash_point(CrashPoint.WRITE_NOW, 0)
        plan.on_store_op("put")
        assert plan.torn_size(0, 10) is None
        assert plan.events == []
        plan.rearm()
        with pytest.raises(SimulatedCrash):
            plan.on_crash_point(CrashPoint.WRITE_NOW, 0)

    def test_torn_size_bounds_and_one_shot(self):
        plan = FaultPlan(
            [
                FaultRule(
                    kind=FaultKind.TORN_COMMIT,
                    point=CrashPoint.BATCH_COMMIT_TORN,
                    tear_fraction=0.99,
                )
            ]
        )
        keep = plan.torn_size(block=1, batch_size=10)
        assert 1 <= keep <= 9  # never the full batch, never empty
        assert plan.torn_size(block=1, batch_size=10) is None  # one-shot

    def test_torn_size_skips_trivially_atomic_batches(self):
        plan = FaultPlan(
            [FaultRule(kind=FaultKind.TORN_COMMIT, point=CrashPoint.BATCH_COMMIT_TORN)]
        )
        assert plan.torn_size(block=1, batch_size=1) is None
        assert plan.pending_rules == 1  # still armed for a real batch
        assert plan.torn_size(block=1, batch_size=2) == 1

    def test_store_op_io_error(self):
        plan = FaultPlan([FaultRule(kind=FaultKind.IO_ERROR, op="get", at_count=2)])
        plan.on_store_op("get", b"k")
        with pytest.raises(TransientIOError):
            plan.on_store_op("get", b"k")
        plan.on_store_op("get", b"k")  # exhausted

    def test_determinism_same_schedule_same_firing(self):
        def run():
            plan = FaultPlan(
                [FaultRule(kind=FaultKind.IO_ERROR, op="put", at_count=7)]
            )
            fired_at = None
            for index in range(20):
                try:
                    plan.on_store_op("put", b"k", block=index)
                except TransientIOError:
                    fired_at = index
            return fired_at

        assert run() == run() == 6

    def test_validate_rejects_targetless_rules(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan([FaultRule(kind=FaultKind.KILL)]).validate()
        with pytest.raises(FaultInjectionError):
            FaultPlan([FaultRule(kind=FaultKind.IO_ERROR)]).validate()
        with pytest.raises(FaultInjectionError):
            FaultPlan(
                [FaultRule(kind=FaultKind.KILL, point=CrashPoint.WRITE_NOW, at_count=0)]
            ).validate()
        FaultPlan.kill_at(CrashPoint.WRITE_NOW).validate()  # sane plan passes


class TestFaultInjectingStore:
    def test_delegates_when_healthy(self):
        store = FaultInjectingStore(MemoryKVStore())
        store.put(b"a", b"1")
        assert store.get(b"a") == b"1"
        assert store.has(b"a")
        assert list(store.scan(b"a", b"b")) == [(b"a", b"1")]
        assert len(store) == 1
        store.delete(b"a")
        assert not store.has(b"a")
        assert isinstance(store.unwrap(), MemoryKVStore)

    def test_transient_io_error_then_recovery(self):
        plan = FaultPlan([FaultRule(kind=FaultKind.IO_ERROR, op="put", at_count=2)])
        store = FaultInjectingStore(MemoryKVStore(), plan)
        store.put(b"a", b"1")
        with pytest.raises(TransientIOError):
            store.put(b"b", b"2")
        store.put(b"b", b"2")  # a retry succeeds — the fault was transient
        assert store.get(b"b") == b"2"
        # the failed attempt must not have landed
        assert len(store) == 2

    def test_kill_on_store_op(self):
        plan = FaultPlan([FaultRule(kind=FaultKind.KILL, op="*")])
        store = FaultInjectingStore(MemoryKVStore(), plan)
        with pytest.raises(SimulatedCrash):
            store.get(b"a")

    def test_block_gating_via_block_height(self):
        plan = FaultPlan([FaultRule(kind=FaultKind.IO_ERROR, op="put", min_block=5)])
        store = FaultInjectingStore(MemoryKVStore(), plan)
        store.put(b"a", b"1")  # block 0: gated
        store.block_height = 5
        with pytest.raises(TransientIOError):
            store.put(b"b", b"2")

    def test_geth_database_propagates_block_height(self):
        store = FaultInjectingStore(MemoryKVStore())
        db = GethDatabase(DBConfig.bare_trace_config(), store=store)
        db.begin_block(17)
        assert store.block_height == 17


class TestTornCommit:
    def test_commit_applies_prefix_in_staging_order(self):
        plan = FaultPlan(
            [
                FaultRule(
                    kind=FaultKind.TORN_COMMIT,
                    point=CrashPoint.BATCH_COMMIT_TORN,
                    tear_fraction=0.5,
                )
            ]
        )
        db = GethDatabase(DBConfig.bare_trace_config(), fault_plan=plan)
        keys = [b"k%02d" % index for index in range(10)]
        for key in keys:
            db.write(key, b"v" + key)
        with pytest.raises(SimulatedCrash) as exc:
            db.commit_batch()
        assert exc.value.point is CrashPoint.BATCH_COMMIT_TORN
        durable = [key for key in keys if db.store.inner.has(key)]
        assert durable == keys[:5]  # exactly the staged prefix survives

    def test_kill_before_commit_keeps_store_untouched(self):
        plan = FaultPlan.kill_at(CrashPoint.BATCH_COMMIT_BEFORE)
        db = GethDatabase(DBConfig.bare_trace_config(), fault_plan=plan)
        db.write(b"a", b"1")
        with pytest.raises(SimulatedCrash):
            db.commit_batch()
        assert not db.store.inner.has(b"a")
        # the batch survives in memory; discard_batch models the crash
        assert db.pending_ops == 1
        db.discard_batch()
        assert db.pending_ops == 0

    def test_kill_after_commit_is_durable(self):
        plan = FaultPlan.kill_at(CrashPoint.BATCH_COMMIT_AFTER)
        db = GethDatabase(DBConfig.bare_trace_config(), fault_plan=plan)
        db.write(b"a", b"1")
        with pytest.raises(SimulatedCrash):
            db.commit_batch()
        assert db.store.inner.get(b"a") == b"1"


class TestPeerRules:
    """PEER_DROP / PEER_SLOW evaluation and the shared seeded streams."""

    def test_repeat_fires_a_burst_then_retires(self):
        rule = FaultRule(kind=FaultKind.PEER_DROP, peer="*", at_count=3, repeat=2)
        plan = FaultPlan([rule])
        fired = [plan.on_peer_request("p") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert rule.fired
        assert len(plan.events) == 2

    def test_peer_targeting(self):
        plan = FaultPlan([FaultRule(kind=FaultKind.PEER_SLOW, peer="p1")])
        assert plan.on_peer_request("p2") is None  # not the target
        rule = plan.on_peer_request("p1")
        assert rule is not None and rule.kind is FaultKind.PEER_SLOW
        assert plan.events[-1].site == "peer.p1"

    def test_disarm_suppresses_peer_rules(self):
        plan = FaultPlan([FaultRule(kind=FaultKind.PEER_DROP, peer="*")])
        plan.disarm()
        assert plan.on_peer_request("p") is None

    def test_min_block_gates_peer_rules(self):
        plan = FaultPlan([FaultRule(kind=FaultKind.PEER_DROP, peer="*", min_block=5)])
        assert plan.on_peer_request("p", block=4) is None
        assert plan.on_peer_request("p", block=5) is not None

    def test_validate_rejects_peerless_and_bad_repeat(self):
        from repro.errors import FaultInjectionError

        with pytest.raises(FaultInjectionError, match="peer target"):
            FaultPlan([FaultRule(kind=FaultKind.PEER_DROP)]).validate()
        with pytest.raises(FaultInjectionError, match="repeat"):
            FaultPlan(
                [FaultRule(kind=FaultKind.PEER_DROP, peer="*", repeat=0)]
            ).validate()

    def test_rule_streams_reproducible_and_independent(self):
        from repro.faults.plan import seeded_stream

        def draws(seed):
            rules = [
                FaultRule(kind=FaultKind.LATENCY, op="*"),
                FaultRule(kind=FaultKind.LATENCY, op="*"),
            ]
            plan = FaultPlan(rules, seed=seed)
            return [plan.rule_stream(rule).random() for rule in rules]

        assert draws(9) == draws(9)
        first, second = draws(9)
        assert first != second  # per-rule streams don't collide
        assert seeded_stream(9, "rule", 0).random() == draws(9)[0]
