"""LSM store tests: correctness vs a dict model, compaction accounting."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyNotFoundError
from repro.kvstore.lsm import LSMConfig, LSMStore, MemTable, SSTable, TOMBSTONE
from repro.kvstore.lsm.sstable import merge_runs

SMALL = LSMConfig(memtable_bytes=2048, l0_compaction_trigger=2, level_base_bytes=8192)


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(b"k", b"v")
        assert table.get(b"k") == b"v"

    def test_tombstone(self):
        table = MemTable()
        table.delete(b"k")
        assert table.get(b"k") is TOMBSTONE

    def test_unknown_key_is_none(self):
        assert MemTable().get(b"nope") is None

    def test_size_accounting_grows_and_adjusts(self):
        table = MemTable()
        table.put(b"k", b"v" * 10)
        size1 = table.approx_bytes
        table.put(b"k", b"v" * 4)
        assert table.approx_bytes == size1 - 6

    def test_sorted_entries(self):
        table = MemTable()
        table.put(b"b", b"2")
        table.put(b"a", b"1")
        assert [k for k, _ in table.sorted_entries()] == [b"a", b"b"]

    def test_iter_range(self):
        table = MemTable()
        for byte in range(6):
            table.put(bytes([byte]), b"v")
        got = [k[0] for k, _ in table.iter_range(bytes([2]), bytes([5]))]
        assert got == [2, 3, 4]


class TestSSTable:
    def _table(self, items):
        return SSTable(sorted(items))

    def test_get_and_ranges(self):
        table = self._table([(b"a", b"1"), (b"c", b"3"), (b"e", TOMBSTONE)])
        assert table.get(b"a") == b"1"
        assert table.get(b"e") is TOMBSTONE
        assert table.get(b"b") is None
        assert table.smallest == b"a" and table.largest == b"e"
        assert table.num_tombstones == 1

    def test_may_contain_never_false_negative(self):
        items = [(bytes([i]), b"v") for i in range(0, 100, 3)]
        table = self._table(items)
        for key, _ in items:
            assert table.may_contain(key)

    def test_overlaps(self):
        table = self._table([(b"c", b"1"), (b"f", b"2")])
        assert table.overlaps(b"a", b"d")
        assert table.overlaps(b"d", b"e")
        assert not table.overlaps(b"g", b"z")
        assert not table.overlaps(b"a", b"b")

    def test_merge_runs_newest_wins(self):
        new = [(b"a", b"new"), (b"b", b"keep")]
        old = [(b"a", b"old"), (b"c", b"3")]
        merged, dropped_tomb, stale = merge_runs(
            [iter(new), iter(old)], drop_tombstones=False
        )
        assert dict(merged) == {b"a": b"new", b"b": b"keep", b"c": b"3"}
        assert stale == 1 and dropped_tomb == 0

    def test_merge_drops_tombstones_at_bottom(self):
        run = [(b"a", TOMBSTONE), (b"b", b"2")]
        merged, dropped, _ = merge_runs([iter(run)], drop_tombstones=True)
        assert dict(merged) == {b"b": b"2"}
        assert dropped == 1


class TestLSMStore:
    def test_basic_roundtrip(self):
        store = LSMStore(SMALL)
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert store.has(b"k")

    def test_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            LSMStore(SMALL).get(b"nope")

    def test_delete_shadows_older_levels(self):
        store = LSMStore(SMALL)
        for i in range(300):
            store.put(b"key%03d" % i, b"x" * 20)
        store.delete(b"key000")
        assert not store.has(b"key000")
        with pytest.raises(KeyNotFoundError):
            store.get(b"key000")

    def test_flush_and_compaction_metrics(self):
        store = LSMStore(SMALL)
        for i in range(500):
            store.put(b"key%04d" % i, b"v" * 30)
        metrics = store.metrics
        assert metrics.flush_bytes_written > 0
        assert metrics.compactions > 0
        assert metrics.compaction_bytes_written > 0
        assert metrics.write_amplification > 1.0

    def test_tombstone_counters(self):
        store = LSMStore(SMALL)
        for i in range(200):
            store.put(b"key%04d" % i, b"v" * 30)
        for i in range(100):
            store.delete(b"key%04d" % i)
        assert store.metrics.tombstones_written == 100
        # Force everything through compaction to the bottom level.
        for i in range(200, 700):
            store.put(b"key%04d" % i, b"v" * 30)
        store.flush_memtable()
        assert store.metrics.tombstones_dropped > 0

    def test_scan_merges_levels(self):
        store = LSMStore(SMALL)
        expected = {}
        for i in range(400):
            key = b"key%04d" % (i % 150)
            value = b"v%d" % i
            store.put(key, value)
            expected[key] = value
        got = dict(store.scan(b""))
        assert got == expected

    def test_scan_range(self):
        store = LSMStore(SMALL)
        for i in range(100):
            store.put(b"k%02d" % i, b"v")
        got = [k for k, _ in store.scan(b"k10", b"k20")]
        assert got == [b"k%02d" % i for i in range(10, 20)]

    def test_len_tracks_live_keys(self):
        store = LSMStore(SMALL)
        for i in range(50):
            store.put(b"key%02d" % i, b"v")
        for i in range(10):
            store.delete(b"key%02d" % i)
        store.put(b"key00", b"back")
        assert len(store) == 41

    def test_level_stats(self):
        store = LSMStore(SMALL)
        for i in range(600):
            store.put(b"key%04d" % i, b"v" * 40)
        stats = store.level_stats()
        assert stats[0].level == 0
        assert sum(s.num_entries for s in stats) >= 1
        assert any(s.level > 0 and s.num_tables > 0 for s in stats)

    def test_block_cache_hits(self):
        store = LSMStore(SMALL)
        for i in range(300):
            store.put(b"key%04d" % i, b"v" * 30)
        store.flush_memtable()
        store.get(b"key0000")
        store.get(b"key0000")
        assert store.metrics.block_cache_hits >= 1

    def test_dict_equivalence_randomized(self):
        rng = random.Random(99)
        store = LSMStore(SMALL)
        model = {}
        for step in range(3000):
            key = b"key%03d" % rng.randrange(250)
            action = rng.random()
            if action < 0.55:
                value = b"val%d" % step
                store.put(key, value)
                model[key] = value
            elif action < 0.8:
                store.delete(key)
                model.pop(key, None)
            else:
                assert store.get_or_none(key) == model.get(key)
        assert dict(store.scan(b"")) == model
        assert len(store) == len(model)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=40),
            st.binary(min_size=1, max_size=16),
        ),
        max_size=150,
    )
)
def test_lsm_matches_dict_property(ops):
    store = LSMStore(LSMConfig(memtable_bytes=512, l0_compaction_trigger=2, level_base_bytes=2048))
    model = {}
    for action, key_index, value in ops:
        key = b"key%02d" % key_index
        if action == "put":
            store.put(key, value)
            model[key] = value
        else:
            store.delete(key)
            model.pop(key, None)
    assert dict(store.scan(b"")) == model
