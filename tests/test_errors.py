"""Exception hierarchy tests."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is errors.ReproError:
                    continue
                assert issubclass(obj, errors.ReproError), name

    def test_subsystem_groupings(self):
        assert issubclass(errors.RLPDecodingError, errors.RLPError)
        assert issubclass(errors.RLPEncodingError, errors.RLPError)
        assert issubclass(errors.KeyNotFoundError, errors.KVStoreError)
        assert issubclass(errors.MissingTrieNodeError, errors.TrieError)
        assert issubclass(errors.InvalidBlockError, errors.ChainError)
        assert issubclass(errors.FreezerError, errors.GethDBError)
        assert issubclass(errors.SnapshotError, errors.GethDBError)
        assert issubclass(errors.TraceFormatError, errors.TraceError)

    def test_key_not_found_is_also_keyerror(self):
        # Callers using dict idioms (except KeyError) keep working.
        assert issubclass(errors.KeyNotFoundError, KeyError)

    def test_key_not_found_message(self):
        error = errors.KeyNotFoundError(b"\xde\xad")
        assert "dead" in str(error)
        assert error.key == b"\xde\xad"

    def test_missing_trie_node_message(self):
        error = errors.MissingTrieNodeError(b"\x01" * 4, path="0a0b")
        assert "01010101" in str(error)
        assert "0a0b" in str(error)

    def test_catch_all_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("bad config")
        with pytest.raises(errors.ReproError):
            raise errors.HybridStoreError("bad routing")
