"""ASCII plot renderer tests."""

from __future__ import annotations

from repro.core.asciiplot import multi_series, scatter


class TestScatter:
    def test_empty(self):
        assert "(no data)" in scatter([], title="t")

    def test_title_and_axes_present(self):
        chart = scatter([(1, 1), (100, 1000)], title="Figure X", xlabel="size")
        assert "Figure X" in chart
        assert "size" in chart
        assert "o" in chart

    def test_extremes_land_on_opposite_corners(self):
        chart = scatter([(1, 1), (1000, 1000)], width=20, height=6)
        rows = [line for line in chart.splitlines() if "|" in line]
        # max y -> top row, min y -> bottom row
        assert "o" in rows[0]
        assert "o" in rows[-1]
        # min x -> first column after the axis, max x -> last column
        assert rows[-1].split("|")[1][0] == "o"
        assert rows[0].split("|")[1].rstrip()[-1] == "o"

    def test_single_point(self):
        chart = scatter([(5, 5)])
        assert chart.count("o") == 1

    def test_zero_values_handled(self):
        chart = scatter([(0, 0), (10, 10)])
        assert "o" in chart  # no crash on log of zero


class TestMultiSeries:
    def test_empty(self):
        assert "(no data)" in multi_series({}, title="t")

    def test_legend_symbols(self):
        chart = multi_series(
            {"TA-TA": [(0, 100), (4, 10)], "TS-TS": [(0, 50), (4, 5)]}
        )
        assert "o TA-TA" in chart
        assert "x TS-TS" in chart

    def test_x_ticks_listed(self):
        chart = multi_series({"s": [(0, 1), (4, 2), (1024, 3)]}, xlabel="distance")
        assert "x: 0 4 1024" in chart
        assert "distance" in chart

    def test_overlap_marker(self):
        chart = multi_series({"a": [(0, 10)], "b": [(0, 10)]})
        assert "." in chart.splitlines()[-1]  # legend explains overlap

    def test_decay_shape_visible(self):
        # A decaying series should put its first point above its last.
        chart = multi_series({"decay": [(0, 1000), (1024, 1)]}, width=30, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_row_with_symbol = next(i for i, r in enumerate(rows) if "o" in r)
        last_row_with_symbol = max(i for i, r in enumerate(rows) if "o" in r)
        assert first_row_with_symbol < last_row_with_symbol

    def test_linear_scale_option(self):
        chart = multi_series({"s": [(0, 1), (1, 2)]}, log_y=False)
        assert "o" in chart
