"""Findings engine integration tests over the session trace pair."""

from __future__ import annotations

import pytest

from repro.core.classes import KVClass
from repro.core.findings import Finding, evaluate_findings
from repro.core.trace import OpType


@pytest.fixture(scope="module")
def report(cache_analysis, bare_analysis):
    return evaluate_findings(cache_analysis, bare_analysis)


class TestReportStructure:
    def test_eleven_findings(self, report):
        assert len(report.findings) == 11
        assert [f.number for f in report.findings] == list(range(1, 12))

    def test_lookup_by_number(self, report):
        assert report.finding(5).number == 5
        with pytest.raises(KeyError):
            report.finding(99)

    def test_render_contains_all(self, report):
        rendered = report.render()
        for number in range(1, 12):
            assert f"Finding {number:2d}" in rendered

    def test_summary_line_format(self):
        finding = Finding(number=3, title="Test", passed=True)
        assert "Finding  3 [PASS] Test" == finding.summary_line()

    def test_all_passed_property(self, report):
        assert report.all_passed == all(f.passed for f in report)


class TestIndividualFindings:
    """Each finding's qualitative claim holds on the synthetic traces."""

    def test_finding1_dominance(self, report):
        finding = report.finding(1)
        assert finding.passed, finding.metrics
        assert finding.metrics["dominant_share_pct"] > 90

    def test_finding2_size_variation(self, report):
        finding = report.finding(2)
        assert finding.passed, finding.metrics
        assert finding.metrics["code_mean_bytes"] > finding.metrics["dominant_mean_bytes"]

    def test_finding3_rarely_read(self, report):
        finding = report.finding(3)
        assert finding.passed, finding.metrics
        assert finding.metrics["cache_ts_read_once_pct"] > 25

    def test_finding4_scans_rare(self, report):
        finding = report.finding(4)
        assert finding.passed, finding.metrics
        assert finding.metrics["scanned_classes"] <= 3

    def test_finding5_deletions(self, report):
        finding = report.finding(5)
        assert finding.passed, finding.metrics
        assert 30 < finding.metrics["txlookup_delete_pct"] < 60

    def test_finding6_medium_frequency(self, report):
        finding = report.finding(6)
        assert finding.passed, finding.metrics

    def test_finding7_snapshot_tradeoff(self, report):
        finding = report.finding(7)
        assert finding.passed, finding.metrics
        assert finding.metrics["trie_read_reduction_pct"] > 30

    def test_finding8_read_clustering(self, report):
        finding = report.finding(8)
        assert finding.passed, finding.metrics
        assert finding.metrics["bare_top_intra_d0"] > finding.metrics["bare_top_cross_d0"]

    def test_finding9_read_skew(self, report):
        finding = report.finding(9)
        assert finding.passed, finding.metrics

    def test_finding10_update_clustering(self, report):
        finding = report.finding(10)
        assert finding.passed, finding.metrics
        assert finding.metrics["head_pointer_pair_in_top3"] == 1.0

    def test_finding11_update_frequency(self, report):
        finding = report.finding(11)
        assert finding.passed, finding.metrics


class TestCrossTraceShape:
    """Direct shape assertions the findings rely on."""

    def test_cache_trace_smaller_than_bare(self, cache_analysis, bare_analysis):
        assert cache_analysis.num_records < bare_analysis.num_records

    def test_blockheader_scans_both_traces(self, cache_analysis, bare_analysis):
        for analysis in (cache_analysis, bare_analysis):
            dist = analysis.opdist.distribution(KVClass.BLOCK_HEADER)
            assert 1.0 < dist.pct(OpType.SCAN) < 15.0

    def test_code_read_dominated(self, cache_analysis, bare_analysis):
        for analysis in (cache_analysis, bare_analysis):
            dist = analysis.opdist.distribution(KVClass.CODE)
            assert dist.pct(OpType.READ) > 70

    def test_code_reads_not_absorbed_by_cache(self, cache_analysis, bare_analysis):
        cache_reads = cache_analysis.opdist.distribution(KVClass.CODE).reads
        bare_reads = bare_analysis.opdist.distribution(KVClass.CODE).reads
        assert cache_reads == pytest.approx(bare_reads, rel=0.1)

    def test_world_state_read_ratios_below_population(self, cache_analysis):
        for kv_class in (KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE):
            assert cache_analysis.read_ratio(kv_class) < 80.0

    def test_update_correlation_head_pointer_count_equals_blocks(self, cache_analysis):
        from repro.core.correlation import class_pair

        results = cache_analysis.correlation(OpType.UPDATE)
        pair = class_pair(KVClass.LAST_HEADER, KVClass.LAST_FAST)
        # One LH-LF adjacency per block (80 measured blocks).
        assert results[0].class_pair_counts.get(pair, 0) == 80
