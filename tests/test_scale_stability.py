"""Scale-stability tests.

The whole reproduction argument rests on distributional *shape*
stabilizing well below mainnet scale.  These tests run the same
workload at two sizes and assert that the headline statistics move
only modestly — i.e., the benchmark scale sits on the stable plateau,
not in a transient.
"""

from __future__ import annotations

import pytest

from repro.core.classes import DOMINANT_CLASSES, KVClass
from repro.core.opdist import OpDistAnalyzer
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType
from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=59, initial_eoa_accounts=1500, initial_contracts=220, txs_per_block=14
)


def run_cache(measured: int, warmup: int):
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.cache_trace_config(192 * 1024), warmup_blocks=warmup),
        WorkloadGenerator(WORKLOAD),
        name=f"scale-{measured}",
    )
    return driver.run(measured)


@pytest.mark.slow
class TestScaleStability:
    @pytest.fixture(scope="class")
    def two_scales(self):
        small = run_cache(measured=60, warmup=30)
        large = run_cache(measured=180, warmup=30)
        return small, large

    def test_dominant_share_stable(self, two_scales):
        small, large = two_scales
        shares = []
        for result in two_scales:
            sizes = SizeAnalyzer()
            sizes.add_store_snapshot(result.store_snapshot)
            shares.append(sizes.dominant_share())
        assert all(share > 95 for share in shares)
        assert abs(shares[0] - shares[1]) < 3.0

    def test_txlookup_delete_share_converges(self, two_scales):
        small, large = two_scales
        shares = []
        for result in two_scales:
            opdist = OpDistAnalyzer(track_keys=False).consume(result.records)
            shares.append(
                opdist.distribution(KVClass.TX_LOOKUP).pct(OpType.DELETE)
            )
        # Both near parity; the larger run at least as close to 50%.
        assert all(40 < share < 60 for share in shares)
        assert abs(shares[1] - 50) <= abs(shares[0] - 50) + 2

    def test_class_shares_stable(self, two_scales):
        share_maps = []
        for result in two_scales:
            opdist = OpDistAnalyzer(track_keys=False).consume(result.records)
            share_maps.append(
                {cls: opdist.class_share(cls) for cls in DOMINANT_CLASSES}
            )
        small_shares, large_shares = share_maps
        # The top op-volume class agrees across scales...
        top = lambda shares: max(shares, key=shares.get)  # noqa: E731
        assert top(small_shares) == top(large_shares)
        # ...and no dominant class's share moves more than a few points
        # (nearby classes may swap exact ranks; their shares may not jump).
        for cls in DOMINANT_CLASSES:
            assert abs(small_shares[cls] - large_shares[cls]) < 4.0, cls

    def test_op_mix_shift_small_across_scales(self, two_scales):
        from repro.core.compare import compare_traces

        small, large = two_scales
        comparison = compare_traces(
            small.records, large.records, "small", "large"
        )
        # Same workload at 3x length: class mixes nearly identical.
        assert comparison.total_variation_distance < 0.08
        for delta in comparison.deltas:
            if delta.ops_a > 500:  # ignore tiny-class noise
                assert delta.mix_shift < 0.15, delta.kv_class
