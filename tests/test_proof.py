"""Merkle proof tests."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.trie import NodeBackend, PathTrie, bytes_to_nibbles
from repro.trie.proof import Proof, generate_proof, verify_proof
from repro.trie.trie import EMPTY_ROOT


class MemBackend(NodeBackend):
    def __init__(self):
        self.data = {}

    def get(self, path):
        return self.data.get(path)

    def peek(self, path):
        return self.data.get(path)

    def put(self, path, blob):
        self.data[path] = blob

    def delete(self, path):
        self.data.pop(path, None)


def key_of(index: int):
    return bytes_to_nibbles(hashlib.sha3_256(b"pk%d" % index).digest())


@pytest.fixture()
def populated():
    trie = PathTrie(MemBackend())
    for i in range(60):
        trie.update(key_of(i), b"value%d" % i)
    root = trie.commit()
    return trie, root


class TestInclusionProofs:
    def test_every_key_provable(self, populated):
        trie, root = populated
        for i in range(60):
            proof = generate_proof(trie, key_of(i))
            assert proof.value == b"value%d" % i
            assert verify_proof(root, proof)

    def test_proof_depth_matches_traversal(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(0))
        assert 1 <= proof.depth <= 8  # shallow trie: a few levels

    def test_proof_is_self_contained(self, populated):
        """Verification uses only the proof nodes, not the trie."""
        trie, root = populated
        proof = generate_proof(trie, key_of(5))
        del trie  # gone; verify must still work
        assert verify_proof(root, proof)


class TestExclusionProofs:
    def test_absent_key_proves_absence(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(10_000))
        assert proof.value is None
        assert verify_proof(root, proof)

    def test_empty_trie_absence(self):
        trie = PathTrie(MemBackend())
        root = trie.commit()
        proof = generate_proof(trie, key_of(1))
        assert proof.nodes == ()
        assert verify_proof(root, proof)
        assert root == EMPTY_ROOT


class TestForgeryResistance:
    def test_wrong_root_rejected(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(3))
        assert not verify_proof(b"\x00" * 32, proof)

    def test_tampered_value_rejected(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(3))
        forged = Proof(key=proof.key, nodes=proof.nodes, value=b"forged")
        assert not verify_proof(root, forged)

    def test_claiming_absence_of_present_key_rejected(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(3))
        forged = Proof(key=proof.key, nodes=proof.nodes, value=None)
        assert not verify_proof(root, forged)

    def test_tampered_node_rejected(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(3))
        tampered_nodes = list(proof.nodes)
        tampered_nodes[-1] = tampered_nodes[-1] + b"\x00"
        forged = Proof(key=proof.key, nodes=tuple(tampered_nodes), value=proof.value)
        assert not verify_proof(root, forged)

    def test_truncated_proof_rejected(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(3))
        if len(proof.nodes) > 1:
            truncated = Proof(
                key=proof.key, nodes=proof.nodes[:-1], value=proof.value
            )
            assert not verify_proof(root, truncated)

    def test_garbage_nodes_rejected_not_crashing(self, populated):
        trie, root = populated
        forged = Proof(key=key_of(1), nodes=(b"\xde\xad\xbe\xef",), value=b"x")
        assert not verify_proof(root, forged)

    def test_proof_for_different_key_rejected(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(3))
        other = Proof(key=key_of(4), nodes=proof.nodes, value=proof.value)
        assert not verify_proof(root, other)


class TestProofsAfterMutation:
    def test_old_proof_fails_against_new_root(self, populated):
        trie, root = populated
        proof = generate_proof(trie, key_of(3))
        trie.update(key_of(3), b"changed")
        new_root = trie.commit()
        assert not verify_proof(new_root, proof)
        fresh = generate_proof(trie, key_of(3))
        assert fresh.value == b"changed"
        assert verify_proof(new_root, fresh)


@settings(max_examples=25, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=40),
        st.binary(min_size=1, max_size=20),
        max_size=30,
    ),
    st.integers(min_value=0, max_value=60),
)
def test_proof_roundtrip_property(entries, probe):
    trie = PathTrie(MemBackend())
    for index, value in entries.items():
        trie.update(key_of(index), value)
    root = trie.commit()
    proof = generate_proof(trie, key_of(probe))
    assert proof.value == entries.get(probe)
    assert verify_proof(root, proof)
