"""GethDatabase facade tests: caching, batching, tracing interplay."""

from __future__ import annotations

from repro.core.trace import OpType
from repro.gethdb import schema
from repro.gethdb.database import DBConfig, GethDatabase


def trie_key(i: int) -> bytes:
    return schema.account_trie_node_key((i % 16, (i // 16) % 16))


class TestConfigs:
    def test_cache_trace_config(self):
        config = DBConfig.cache_trace_config()
        assert config.caching_enabled and config.snapshot_enabled

    def test_bare_trace_config(self):
        config = DBConfig.bare_trace_config()
        assert not config.caching_enabled and not config.snapshot_enabled
        assert config.cache_bytes == 0

    def test_bare_database_has_no_caches(self):
        assert GethDatabase(DBConfig.bare_trace_config()).caches is None


class TestReadPath:
    def test_cached_read_hits_silently(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        db.write_now(trie_key(1), b"node")
        db.collector.clear()
        assert db.read(trie_key(1)) == b"node"  # write-through -> hit
        assert db.collector.count == 0

    def test_cache_miss_is_traced(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        db.store.inner.put(trie_key(2), b"cold")  # store only, no cache
        db.collector.clear()
        assert db.read(trie_key(2)) == b"cold"
        assert db.collector.count == 1
        assert db.collector.records[0].op is OpType.READ

    def test_miss_populates_cache(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        db.store.inner.put(trie_key(3), b"cold")
        db.read(trie_key(3))
        db.collector.clear()
        db.read(trie_key(3))
        assert db.collector.count == 0

    def test_bare_mode_always_traced(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        db.write_now(trie_key(4), b"node")
        db.collector.clear()
        db.read(trie_key(4))
        db.read(trie_key(4))
        assert db.collector.count == 2

    def test_read_uncached_bypasses_cache(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        db.write_now(trie_key(5), b"node")
        db.collector.clear()
        db.read_uncached(trie_key(5))
        assert db.collector.count == 1

    def test_peek_is_never_traced(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        db.write_now(trie_key(6), b"node")
        db.collector.clear()
        assert db.peek(trie_key(6)) == b"node"
        assert db.peek(b"missing") is None
        assert db.collector.count == 0

    def test_peek_sees_pending_batch(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        db.write(trie_key(7), b"staged")
        assert db.peek(trie_key(7)) == b"staged"


class TestWritePath:
    def test_writes_are_batched_until_commit(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        db.write(b"k", b"v")
        assert db.collector.count == 0
        assert not db.has(b"k")
        db.commit_batch()
        assert db.has(b"k")
        assert db.collector.count == 1

    def test_batch_commit_preserves_staging_order(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        db.write(schema.LAST_HEADER_KEY, b"h")
        db.write(schema.LAST_FAST_KEY, b"f")
        db.write(schema.LAST_BLOCK_KEY, b"b")
        db.commit_batch()
        keys = [r.key for r in db.collector.records]
        assert keys == [b"LastHeader", b"LastFast", b"LastBlock"]

    def test_delete_invalidates_cache(self):
        db = GethDatabase(DBConfig.cache_trace_config())
        db.write_now(trie_key(8), b"node")
        db.delete(trie_key(8))
        db.commit_batch()
        db.collector.clear()
        assert db.read(trie_key(8)) is None
        assert db.collector.count == 1  # miss went to the store

    def test_write_now_is_immediate(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        db.write_now(b"k", b"v")
        assert db.has(b"k")
        assert db.collector.records[0].op is OpType.WRITE

    def test_update_classification_at_commit_time(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        db.write(b"k", b"v1")
        db.commit_batch()
        db.write(b"k", b"v2")
        db.commit_batch()
        ops = [r.op for r in db.collector.records]
        assert ops == [OpType.WRITE, OpType.UPDATE]


class TestBlockStamping:
    def test_begin_block_stamps_records(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        db.begin_block(42)
        db.write_now(b"k", b"v")
        assert db.collector.records[0].block == 42


class TestScans:
    def test_scan_prefix_traced_once(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        db.write_now(schema.snapshot_account_key(b"\x01" * 32), b"a")
        db.write_now(schema.snapshot_account_key(b"\x02" * 32), b"b")
        db.collector.clear()
        results = list(db.scan_prefix(b"a"))
        assert len(results) == 2
        scans = [r for r in db.collector.records if r.op is OpType.SCAN]
        assert len(scans) == 1
