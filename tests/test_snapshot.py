"""Snapshot acceleration layer tests."""

from __future__ import annotations

from repro.chain.account import Account
from repro.core.classes import KVClass, classify_key
from repro.core.trace import OpType
from repro.gethdb import schema
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.snapshot import SnapshotTree


def make_tree(flush_depth=2, flush_interval=2):
    db = GethDatabase(DBConfig.cache_trace_config())
    return db, SnapshotTree(db, flush_depth=flush_depth, flush_interval=flush_interval)


ROOT = b"\x42" * 32
A1 = b"\x01" * 32
A2 = b"\x02" * 32
SLOT = b"\x0a" * 32


class TestDiffLayers:
    def test_read_through_diff_layers(self):
        db, tree = make_tree()
        account = Account(nonce=1, balance=100)
        tree.update(ROOT, {A1: account}, {})
        assert tree.get_account(A1) == account.encode_slim()

    def test_newest_layer_wins(self):
        db, tree = make_tree(flush_depth=10)
        tree.update(ROOT, {A1: Account(nonce=1)}, {})
        tree.update(ROOT, {A1: Account(nonce=2)}, {})
        assert Account.decode_slim(tree.get_account(A1)).nonce == 2

    def test_deletion_marker_shadows_older(self):
        db, tree = make_tree(flush_depth=10)
        tree.update(ROOT, {A1: Account(nonce=1)}, {})
        tree.update(ROOT, {A1: None}, {})
        assert tree.get_account(A1) is None

    def test_storage_lookup(self):
        db, tree = make_tree(flush_depth=10)
        tree.update(ROOT, {}, {(A1, SLOT): b"value"})
        assert tree.get_storage(A1, SLOT) == b"value"
        assert tree.get_storage(A2, SLOT) is None

    def test_layer_depth_bounded(self):
        db, tree = make_tree(flush_depth=3)
        for i in range(10):
            tree.update(ROOT, {A1: Account(nonce=i)}, {})
        assert tree.pending_layers <= 3


class TestFlushing:
    def test_aggregation_coalesces_hot_keys(self):
        db, tree = make_tree(flush_depth=1, flush_interval=4)
        for i in range(5):
            tree.update(ROOT, {A1: Account(nonce=i)}, {})
        db.commit_batch()
        writes = [
            r
            for r in db.collector.records
            if r.op in (OpType.WRITE, OpType.UPDATE)
            and classify_key(r.key) is KVClass.SNAPSHOT_ACCOUNT
        ]
        # 4 layers coalesce into one flat write, not four.
        assert len(writes) == 1

    def test_flush_all_persists_everything(self):
        db, tree = make_tree(flush_depth=8, flush_interval=100)
        tree.update(ROOT, {A1: Account(nonce=5)}, {(A2, SLOT): b"sv"})
        tree.flush_all()
        db.commit_batch()
        assert db.has(schema.snapshot_account_key(A1))
        assert db.has(schema.snapshot_storage_key(A2, SLOT))
        assert tree.pending_layers == 0

    def test_read_through_pending_accumulator(self):
        db, tree = make_tree(flush_depth=1, flush_interval=100)
        tree.update(ROOT, {A1: Account(nonce=7)}, {})
        tree.update(ROOT, {A2: Account(nonce=8)}, {})  # pushes A1 to accumulator
        assert Account.decode_slim(tree.get_account(A1)).nonce == 7

    def test_destruct_scan_deletes_storage(self):
        db, tree = make_tree(flush_depth=1, flush_interval=1)
        # Populate flat storage for A1.
        tree.update(ROOT, {A1: Account(nonce=1)}, {(A1, SLOT): b"v", (A1, b"\x0b" * 32): b"w"})
        tree.update(ROOT, {}, {})
        db.commit_batch()
        assert db.has(schema.snapshot_storage_key(A1, SLOT))
        db.collector.clear()
        # Destruct A1: account delete + storage range scan-delete.
        tree.update(ROOT, {A1: None}, {})
        tree.update(ROOT, {}, {})
        db.commit_batch()
        assert not db.has(schema.snapshot_account_key(A1))
        assert not db.has(schema.snapshot_storage_key(A1, SLOT))
        scans = [r for r in db.collector.records if r.op is OpType.SCAN]
        assert len(scans) == 1
        assert classify_key(scans[0].key) is KVClass.SNAPSHOT_STORAGE


class TestLifecycle:
    def test_journal_writes_singleton(self):
        db, tree = make_tree(flush_depth=10)
        tree.update(ROOT, {A1: Account(nonce=1)}, {})
        tree.journal()
        assert db.has(schema.SNAPSHOT_JOURNAL_KEY)

    def test_generator_marker(self):
        db, tree = make_tree()
        tree.write_generator_marker(done=False)
        assert db.store.inner.get(schema.SNAPSHOT_GENERATOR_KEY) == b"gen"
        tree.write_generator_marker(done=True)
        assert db.store.inner.get(schema.SNAPSHOT_GENERATOR_KEY) == b"done"

    def test_verify_startup_emits_one_scan(self):
        db, tree = make_tree(flush_depth=1, flush_interval=1)
        for i in range(3):
            tree.update(ROOT, {bytes([i]) * 32: Account(nonce=i)}, {})
        tree.update(ROOT, {}, {})
        db.commit_batch()
        db.collector.clear()
        touched = tree.verify_startup()
        assert touched >= 1
        scans = [r for r in db.collector.records if r.op is OpType.SCAN]
        assert len(scans) == 1
        assert classify_key(scans[0].key) is KVClass.SNAPSHOT_ACCOUNT

    def test_disabled_tree_flag(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        tree = SnapshotTree(db)
        assert not tree.enabled
