"""Snap synchronization tests."""

from __future__ import annotations

import pytest

from repro.core.classes import KVClass, classify_key
from repro.core.trace import OpType
from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
from repro.sync.snapsync import SnapSyncDriver
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=55, initial_eoa_accounts=300, initial_contracts=50, txs_per_block=8
)


@pytest.fixture(scope="module")
def peer():
    """A completed full-sync node acting as the serving peer."""
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=8),
        WorkloadGenerator(WORKLOAD),
        name="peer",
    )
    driver.run(24)
    return driver


@pytest.fixture(scope="module")
def snap_run(peer):
    snap = SnapSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=0),
        WORKLOAD,
        range_chunk=64,
    )
    result = snap.sync_from_peer(peer, tail_blocks=10)
    return snap, result


class TestStateDownload:
    def test_state_root_heals_to_peer_root(self, snap_run):
        _, result = snap_run
        assert result.state_root_matches

    def test_downloads_cover_peer_population(self, snap_run):
        _, result = snap_run
        # All genesis accounts plus any created during the peer's run.
        assert result.accounts_downloaded >= 300 + 50
        assert result.slots_downloaded > 100
        assert result.codes_downloaded >= 8

    def test_state_matches_peer_at_pivot(self, peer):
        # A tail-less snap run leaves the local state exactly at the
        # pivot, so point lookups must agree with the peer everywhere.
        snap = SnapSyncDriver(
            SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=0),
            WORKLOAD,
            range_chunk=64,
        )
        snap.sync_from_peer(peer, tail_blocks=0)
        for address in peer.workload.eoa_addresses[:20]:
            assert snap.driver.state.get_account(address) == peer.state.get_account(
                address
            )
        contract = peer.workload.contract_addresses[0]
        slot, _ = peer.workload.initial_slots_for(contract)[0]
        assert snap.driver.state.get_storage_hashed(
            contract, slot
        ) == peer.state.get_storage_hashed(contract, slot)


class TestTrafficProfile:
    def test_download_phase_is_write_dominated(self, snap_run):
        _, result = snap_run
        pivot_records = [r for r in result.records if r.block == result.pivot_number]
        puts = sum(
            1 for r in pivot_records if r.op in (OpType.WRITE, OpType.UPDATE)
        )
        reads = sum(1 for r in pivot_records if r.op is OpType.READ)
        # Snap download/heal writes state; reads come only from the heal
        # phase re-resolving upper trie nodes between range commits.
        assert puts > 1.5 * max(1, reads)

    def test_heal_writes_trie_nodes(self, snap_run):
        _, result = snap_run
        trie_writes = sum(
            1
            for r in result.records
            if r.op is OpType.WRITE
            and classify_key(r.key)
            in (KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE)
        )
        assert trie_writes > 300

    def test_tail_blocks_continue_the_chain(self, peer, snap_run):
        snap, result = snap_run
        assert result.tail_blocks_processed == 10
        assert snap.driver._head_number == result.pivot_number + 10

    def test_tail_execution_reads_downloaded_state(self, snap_run):
        _, result = snap_run
        tail_records = [r for r in result.records if r.block > result.pivot_number]
        tail_reads = sum(1 for r in tail_records if r.op is OpType.READ)
        assert tail_reads > 50  # full-sync behaviour resumed


class TestEdgeCases:
    def test_empty_state_peer_syncs_to_genesis(self):
        """A peer that never ran a block serves only its genesis state."""
        tiny = WorkloadConfig(
            seed=99, initial_eoa_accounts=2, initial_contracts=1, txs_per_block=1
        )
        empty_peer = FullSyncDriver(
            SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=0),
            WorkloadGenerator(tiny),
            name="empty-peer",
        )
        empty_peer.run(0)
        snap = SnapSyncDriver(
            SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=0),
            tiny,
            range_chunk=4,
        )
        result = snap.sync_from_peer(empty_peer, tail_blocks=2)
        assert result.state_root_matches
        assert result.pivot_number == 0
        assert result.accounts_downloaded == 3  # 2 EOAs + 1 contract
        assert result.tail_blocks_processed == 2

    def test_peer_failure_mid_download_raises(self, peer):
        from repro.errors import PeerNetworkError
        from repro.faults import FaultKind, FaultPlan, FaultRule

        plan = FaultPlan(
            [FaultRule(FaultKind.PEER_DROP, peer="snap-peer", at_count=2)]
        )
        snap = SnapSyncDriver(
            SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=0),
            WORKLOAD,
            range_chunk=64,
            fault_plan=plan,
        )
        with pytest.raises(PeerNetworkError, match="dropped the connection"):
            snap.sync_from_peer(peer, tail_blocks=0)
        # The ranges committed before the drop are durable...
        assert len(snap.driver.db.store.inner) > 100
        # ...but the node never switched to full sync at the head.
        assert not snap.driver._initialized

    def test_download_resumes_after_peer_failure(self, peer):
        from repro.errors import PeerNetworkError
        from repro.faults import FaultKind, FaultPlan, FaultRule

        plan = FaultPlan(
            [FaultRule(FaultKind.PEER_DROP, peer="snap-peer", at_count=3)]
        )
        snap = SnapSyncDriver(
            SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=0),
            WORKLOAD,
            range_chunk=64,
            fault_plan=plan,
        )
        with pytest.raises(PeerNetworkError):
            snap.sync_from_peer(peer, tail_blocks=0)
        # The fault rule is one-shot; the retry re-downloads the
        # remainder and converges to the peer's exact state root.
        result = snap.sync_from_peer(peer, tail_blocks=0)
        assert result.state_root_matches
        for address in peer.workload.eoa_addresses[:10]:
            assert snap.driver.state.get_account(address) == peer.state.get_account(
                address
            )
