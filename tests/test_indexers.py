"""TxIndexer and BloomBitsIndexer tests."""

from __future__ import annotations

from repro.chain.bloom import Bloom
from repro.core.classes import KVClass, classify_key
from repro.core.trace import OpType
from repro.gethdb import schema
from repro.gethdb.bloombits import BloomBitsIndexer
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.txindexer import TxIndexer


def make_db():
    return GethDatabase(DBConfig.bare_trace_config())


def tx_hashes(block: int, count: int):
    return [bytes([block, i]) + b"\x00" * 30 for i in range(count)]


class TestTxIndexer:
    def test_index_block_writes_lookups(self):
        db = make_db()
        indexer = TxIndexer(db, lookup_limit=4)
        hashes = tx_hashes(1, 3)
        indexer.index_block(1, hashes)
        db.commit_batch()
        for tx_hash in hashes:
            assert db.has(schema.tx_lookup_key(tx_hash))

    def test_unindex_before_window_full_is_noop(self):
        db = make_db()
        indexer = TxIndexer(db, lookup_limit=10)
        indexer.index_block(1, tx_hashes(1, 2))
        assert indexer.unindex(head_number=5) == 0

    def test_unindex_deletes_old_entries(self):
        db = make_db()
        indexer = TxIndexer(db, lookup_limit=3)
        all_hashes = {}
        for number in range(1, 8):
            hashes = tx_hashes(number, 2)
            all_hashes[number] = hashes
            indexer.index_block(number, hashes)
            indexer.unindex(number)
            db.commit_batch()
        # Window covers blocks 5..7; 1..4 unindexed.
        for number in range(1, 5):
            for tx_hash in all_hashes[number]:
                assert not db.has(schema.tx_lookup_key(tx_hash))
        for number in range(5, 8):
            for tx_hash in all_hashes[number]:
                assert db.has(schema.tx_lookup_key(tx_hash))
        assert indexer.tail == 5

    def test_unindex_updates_tail_record(self):
        db = make_db()
        indexer = TxIndexer(db, lookup_limit=2)
        for number in range(1, 6):
            indexer.index_block(number, tx_hashes(number, 1))
            indexer.unindex(number)
            db.commit_batch()
        tail_value = db.store.inner.get(schema.TRANSACTION_INDEX_TAIL_KEY)
        assert int.from_bytes(tail_value, "big") == indexer.tail

    def test_write_delete_balance_at_steady_state(self):
        db = make_db()
        indexer = TxIndexer(db, lookup_limit=3)
        for number in range(1, 30):
            indexer.index_block(number, tx_hashes(number, 2))
            indexer.unindex(number)
            db.commit_batch()
        records = [
            r
            for r in db.collector.records
            if classify_key(r.key) is KVClass.TX_LOOKUP
        ]
        writes = sum(1 for r in records if r.op is OpType.WRITE)
        deletes = sum(1 for r in records if r.op is OpType.DELETE)
        # At steady state deletions track insertions (Finding 5: ~48/52).
        assert deletes > 0
        assert abs(writes - deletes) <= 2 * 3  # bounded by the window


class TestBloomBitsIndexer:
    def _bloom(self, seed: int) -> Bloom:
        bloom = Bloom()
        bloom.add(bytes([seed]) * 20)
        return bloom

    def test_section_completion_writes_rows(self):
        db = make_db()
        indexer = BloomBitsIndexer(db, section_size=4, tracked_bits=8)
        for number in range(4):
            indexer.add_block(number, bytes([number]) * 32, self._bloom(number))
        db.commit_batch()
        assert indexer.sections_done == 1
        bloom_writes = [
            r
            for r in db.collector.records
            if classify_key(r.key) is KVClass.BLOOM_BITS
            and r.op in (OpType.WRITE, OpType.UPDATE)
        ]
        assert len(bloom_writes) == 8

    def test_incomplete_section_writes_nothing(self):
        db = make_db()
        indexer = BloomBitsIndexer(db, section_size=10, tracked_bits=4)
        for number in range(9):
            indexer.add_block(number, bytes([number]) * 32, self._bloom(number))
        assert indexer.sections_done == 0
        assert db.pending_ops == 0

    def test_progress_record(self):
        db = make_db()
        indexer = BloomBitsIndexer(db, section_size=2, tracked_bits=2)
        for number in range(6):
            indexer.add_block(number, bytes([number]) * 32, self._bloom(number))
        db.commit_batch()
        assert indexer.sections_done == 3
        assert indexer.read_progress() == 3

    def test_query_bit_roundtrip(self):
        db = make_db()
        indexer = BloomBitsIndexer(db, section_size=2, tracked_bits=2)
        head = b"\xaa" * 32
        bloom = Bloom()
        bloom.add(b"element")
        indexer.add_block(0, b"\x00" * 32, bloom)
        indexer.add_block(1, head, bloom)
        db.commit_batch()
        row = indexer.query_bit(0, 0, head)
        assert isinstance(row, bytes) and len(row) == 1

    def test_bookkeeping_classified_as_bloom_bits_index(self):
        db = make_db()
        indexer = BloomBitsIndexer(db, section_size=1, tracked_bits=1)
        indexer.add_block(0, b"\x01" * 32, self._bloom(1))
        db.commit_batch()
        index_records = [
            r
            for r in db.collector.records
            if classify_key(r.key) is KVClass.BLOOM_BITS_INDEX
        ]
        assert index_records
