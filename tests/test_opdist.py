"""Operation-distribution analyzer tests (Tables II/III/IV, Figure 3)."""

from __future__ import annotations

import pytest

from repro.core.classes import KVClass
from repro.core.opdist import OpDistAnalyzer, OperationDistribution
from repro.core.trace import OpType, TraceRecord


def R(key, op=OpType.READ, size=10, block=0):
    return TraceRecord(op, key, size, block)


TXL = b"l" + b"\x01" * 32
TXL2 = b"l" + b"\x02" * 32
TA = b"A\x01\x23"


class TestOperationDistribution:
    def test_percentages(self):
        dist = OperationDistribution(KVClass.TX_LOOKUP, writes=3, deletes=1)
        assert dist.total == 4
        assert dist.pct(OpType.WRITE) == 75.0
        assert dist.pct(OpType.DELETE) == 25.0
        assert dist.pct(OpType.SCAN) == 0.0

    def test_empty_distribution(self):
        dist = OperationDistribution(KVClass.CODE)
        assert dist.total == 0
        assert dist.pct(OpType.READ) == 0.0


class TestAnalyzer:
    def test_counts_by_class_and_op(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume(
            [
                R(TXL, OpType.WRITE),
                R(TXL, OpType.DELETE),
                R(TA, OpType.READ),
                R(TA, OpType.UPDATE),
                R(TA, OpType.SCAN),
            ]
        )
        txl = analyzer.distribution(KVClass.TX_LOOKUP)
        assert txl.writes == 1 and txl.deletes == 1
        ta = analyzer.distribution(KVClass.TRIE_NODE_ACCOUNT)
        assert ta.reads == 1 and ta.updates == 1 and ta.scans == 1
        assert analyzer.total_ops == 5

    def test_class_share(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume([R(TXL), R(TXL), R(TXL), R(TA)])
        assert analyzer.class_share(KVClass.TX_LOOKUP) == 75.0

    def test_unseen_class_is_empty(self):
        analyzer = OpDistAnalyzer()
        assert analyzer.distribution(KVClass.CODE).total == 0
        assert analyzer.class_share(KVClass.CODE) == 0.0

    def test_scanned_classes(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume([R(b"a" + b"\x01" * 32, OpType.SCAN), R(TA, OpType.READ)])
        assert analyzer.scanned_classes() == [KVClass.SNAPSHOT_ACCOUNT]

    def test_totals(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume(
            [R(TA, OpType.READ), R(TA, OpType.WRITE), R(TXL, OpType.UPDATE)]
        )
        assert analyzer.total_reads() == 1
        assert analyzer.total_puts() == 2
        assert analyzer.reads_in([KVClass.TRIE_NODE_ACCOUNT]) == 1
        assert analyzer.puts_in([KVClass.TX_LOOKUP]) == 1


class TestPerKeyActivity:
    def test_read_ratio_over_keys_seen(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume(
            [
                R(TXL, OpType.WRITE),
                R(TXL2, OpType.WRITE),
                R(TXL, OpType.READ),
            ]
        )
        # 1 of 2 keys ever present was read.
        assert analyzer.read_ratio(KVClass.TX_LOOKUP) == 50.0

    def test_frequency_distribution(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume([R(TXL)] * 3 + [R(TXL2)])
        activity = analyzer.activity(KVClass.TX_LOOKUP)
        assert activity.frequency_distribution(OpType.READ) == [(1, 1), (3, 1)]

    def test_fraction_with_frequency(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume([R(TXL)] * 2 + [R(TXL2)])
        activity = analyzer.activity(KVClass.TX_LOOKUP)
        assert activity.fraction_with_frequency(OpType.READ, 1) == 50.0
        assert activity.fraction_with_frequency(OpType.READ, 2) == 50.0

    def test_keys_with_op_at_least(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume(
            [R(TXL, OpType.DELETE), R(TXL, OpType.DELETE), R(TXL2, OpType.DELETE)]
        )
        activity = analyzer.activity(KVClass.TX_LOOKUP)
        assert activity.keys_with_op_at_least(OpType.DELETE, 2) == 1

    def test_top_read_keys(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume([R(TXL)] * 5 + [R(TXL2)] * 2)
        top = analyzer.top_read_keys(KVClass.TX_LOOKUP, fraction=0.5)
        assert top == [TXL]
        assert analyzer.reads_to_keys(KVClass.TX_LOOKUP, top) == 5

    def test_reads_to_band(self):
        analyzer = OpDistAnalyzer()
        analyzer.consume([R(TXL)] * 15 + [R(TXL2)] * 2)
        assert analyzer.reads_to_band(KVClass.TX_LOOKUP, 10, 100) == 15
        assert analyzer.reads_to_band(KVClass.TX_LOOKUP, 1, 5) == 2

    def test_tracking_disabled_raises(self):
        analyzer = OpDistAnalyzer(track_keys=False)
        analyzer.consume([R(TXL)])
        with pytest.raises(ValueError):
            analyzer.activity(KVClass.TX_LOOKUP)
