"""KV store interface, memdb, and batch tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import KeyNotFoundError, StoreClosedError
from repro.kvstore.api import Batch, prefix_upper_bound
from repro.kvstore.memdb import MemoryKVStore


class TestMemoryKVStore:
    def test_put_get(self):
        store = MemoryKVStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_missing_raises(self):
        store = MemoryKVStore()
        with pytest.raises(KeyNotFoundError):
            store.get(b"missing")

    def test_get_or_none(self):
        store = MemoryKVStore()
        assert store.get_or_none(b"x") is None
        store.put(b"x", b"1")
        assert store.get_or_none(b"x") == b"1"

    def test_overwrite(self):
        store = MemoryKVStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_delete(self):
        store = MemoryKVStore()
        store.put(b"k", b"v")
        store.delete(b"k")
        assert not store.has(b"k")
        assert len(store) == 0

    def test_delete_missing_is_noop(self):
        store = MemoryKVStore()
        store.delete(b"never")  # no exception

    def test_scan_ordering(self):
        store = MemoryKVStore()
        for byte in (5, 1, 9, 3):
            store.put(bytes([byte]), b"v")
        keys = [k for k, _ in store.scan(b"")]
        assert keys == sorted(keys)

    def test_scan_range_bounds(self):
        store = MemoryKVStore()
        for byte in range(10):
            store.put(bytes([byte]), bytes([byte]))
        got = [k[0] for k, _ in store.scan(bytes([3]), bytes([7]))]
        assert got == [3, 4, 5, 6]

    def test_scan_prefix(self):
        store = MemoryKVStore()
        store.put(b"aa1", b"1")
        store.put(b"aa2", b"2")
        store.put(b"ab1", b"3")
        got = [k for k, _ in store.scan_prefix(b"aa")]
        assert got == [b"aa1", b"aa2"]

    def test_scan_sees_interleaved_deletes(self):
        store = MemoryKVStore()
        for byte in range(5):
            store.put(bytes([byte]), b"v")
        result = []
        for key, _ in store.scan(b""):
            result.append(key)
            store.delete(bytes([3]))
        assert bytes([3]) not in result or result.index(bytes([3])) < 3

    def test_closed_store_raises(self):
        store = MemoryKVStore()
        store.close()
        with pytest.raises(StoreClosedError):
            store.put(b"k", b"v")

    def test_keys_iteration(self):
        store = MemoryKVStore()
        store.put(b"b", b"2")
        store.put(b"a", b"1")
        assert list(store.keys()) == [b"a", b"b"]


class TestPrefixUpperBound:
    def test_simple(self):
        assert prefix_upper_bound(b"abc") == b"abd"

    def test_trailing_ff_carries(self):
        assert prefix_upper_bound(b"a\xff") == b"b"

    def test_all_ff_unbounded(self):
        assert prefix_upper_bound(b"\xff\xff") is None

    def test_empty_prefix_unbounded(self):
        assert prefix_upper_bound(b"") is None

    @given(st.binary(min_size=1, max_size=8), st.binary(max_size=8))
    def test_bound_property(self, prefix, suffix):
        upper = prefix_upper_bound(prefix)
        key = prefix + suffix
        if upper is not None:
            assert prefix <= key < upper


class TestBatch:
    def test_commit_applies_all(self):
        store = MemoryKVStore()
        batch = Batch(store)
        batch.put(b"a", b"1")
        batch.put(b"b", b"2")
        batch.delete(b"c")
        store.put(b"c", b"3")
        batch.commit()
        assert store.get(b"a") == b"1"
        assert store.get(b"b") == b"2"
        assert not store.has(b"c")

    def test_nothing_applied_before_commit(self):
        store = MemoryKVStore()
        batch = Batch(store)
        batch.put(b"a", b"1")
        assert not store.has(b"a")

    def test_last_write_wins_within_batch(self):
        store = MemoryKVStore()
        batch = Batch(store)
        batch.put(b"k", b"old")
        batch.delete(b"k")
        batch.commit()
        assert not store.has(b"k")
        assert len(batch) == 0  # commit resets

    def test_put_after_delete_within_batch(self):
        store = MemoryKVStore()
        batch = Batch(store)
        batch.delete(b"k")
        batch.put(b"k", b"new")
        batch.commit()
        assert store.get(b"k") == b"new"

    def test_reset_discards(self):
        store = MemoryKVStore()
        batch = Batch(store)
        batch.put(b"a", b"1")
        batch.reset()
        batch.commit()
        assert not store.has(b"a")

    def test_size_bytes(self):
        batch = Batch(MemoryKVStore())
        batch.put(b"ab", b"cdef")
        batch.delete(b"gh")
        assert batch.size_bytes == 2 + 4 + 2

    def test_write_batch_factory(self):
        store = MemoryKVStore()
        batch = store.write_batch()
        batch.put(b"z", b"9")
        batch.commit()
        assert store.get(b"z") == b"9"


class TestDictEquivalence:
    """MemoryKVStore behaves like a plain dict under random ops."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get"]),
                st.binary(min_size=1, max_size=4),
                st.binary(max_size=8),
            ),
            max_size=200,
        )
    )
    def test_random_ops(self, ops):
        store = MemoryKVStore()
        model: dict[bytes, bytes] = {}
        for action, key, value in ops:
            if action == "put":
                store.put(key, value)
                model[key] = value
            elif action == "delete":
                store.delete(key)
                model.pop(key, None)
            else:
                assert store.get_or_none(key) == model.get(key)
        assert dict(store.scan(b"")) == model
        assert len(store) == len(model)
