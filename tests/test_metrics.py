"""StoreMetrics accounting tests."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.kvstore.metrics import LevelStats, StoreMetrics


class TestStoreMetrics:
    def test_fresh_metrics_are_zero(self):
        metrics = StoreMetrics()
        assert metrics.total_bytes_written() == 0
        assert metrics.write_amplification == 0.0
        assert metrics.read_amplification == 0.0

    def test_total_bytes_written_sums_channels(self):
        metrics = StoreMetrics(
            wal_bytes_written=10,
            flush_bytes_written=20,
            compaction_bytes_written=30,
            gc_bytes_written=40,
        )
        assert metrics.total_bytes_written() == 100

    def test_write_amplification(self):
        metrics = StoreMetrics(
            user_bytes_written=50, wal_bytes_written=50, compaction_bytes_written=100
        )
        assert metrics.write_amplification == 3.0

    def test_read_amplification(self):
        metrics = StoreMetrics(user_gets=4, sstable_lookups=10)
        assert metrics.read_amplification == 2.5

    def test_snapshot_includes_derived_fields(self):
        metrics = StoreMetrics(user_bytes_written=10, wal_bytes_written=20)
        snapshot = metrics.snapshot()
        assert snapshot["total_bytes_written"] == 20
        assert snapshot["write_amplification"] == 2.0
        assert snapshot["user_bytes_written"] == 10

    @given(
        st.integers(min_value=1, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_amplification_never_negative(self, user, wal, compaction):
        metrics = StoreMetrics(
            user_bytes_written=user,
            wal_bytes_written=wal,
            compaction_bytes_written=compaction,
        )
        assert metrics.write_amplification >= 0.0


class TestLevelStats:
    def test_defaults(self):
        stats = LevelStats(level=2)
        assert stats.num_tables == 0
        assert stats.extra == {}
