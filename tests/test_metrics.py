"""StoreMetrics accounting tests."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.kvstore.metrics import LevelStats, StoreMetrics


class TestStoreMetrics:
    def test_fresh_metrics_are_zero(self):
        metrics = StoreMetrics()
        assert metrics.total_bytes_written() == 0
        assert metrics.write_amplification == 0.0
        assert metrics.read_amplification == 0.0

    def test_total_bytes_written_sums_channels(self):
        metrics = StoreMetrics(
            wal_bytes_written=10,
            flush_bytes_written=20,
            compaction_bytes_written=30,
            gc_bytes_written=40,
        )
        assert metrics.total_bytes_written() == 100

    def test_write_amplification(self):
        metrics = StoreMetrics(
            user_bytes_written=50, wal_bytes_written=50, compaction_bytes_written=100
        )
        assert metrics.write_amplification == 3.0

    def test_read_amplification(self):
        metrics = StoreMetrics(user_gets=4, sstable_lookups=10)
        assert metrics.read_amplification == 2.5

    def test_snapshot_includes_derived_fields(self):
        metrics = StoreMetrics(user_bytes_written=10, wal_bytes_written=20)
        snapshot = metrics.snapshot()
        assert snapshot["total_bytes_written"] == 20
        assert snapshot["write_amplification"] == 2.0
        assert snapshot["user_bytes_written"] == 10

    @given(
        st.integers(min_value=1, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_amplification_never_negative(self, user, wal, compaction):
        metrics = StoreMetrics(
            user_bytes_written=user,
            wal_bytes_written=wal,
            compaction_bytes_written=compaction,
        )
        assert metrics.write_amplification >= 0.0


class TestEmptyStoreAmplification:
    """Fresh stores must report 0.0 amplification, not divide by zero.

    Exercised against the real backends (not a bare StoreMetrics) so a
    backend that pre-populates counters in its constructor — or wires
    metrics up differently — is still covered.
    """

    def _fresh_stores(self):
        from repro.kvstore.btree import BPlusTreeStore
        from repro.kvstore.hashlog import HashLogStore
        from repro.kvstore.lsm.store import LSMStore
        from repro.kvstore.memdb import MemoryKVStore

        return [MemoryKVStore(), LSMStore(), BPlusTreeStore(), HashLogStore()]

    def test_empty_store_amplification_is_zero(self):
        for store in self._fresh_stores():
            name = type(store).__name__
            assert store.metrics.write_amplification == 0.0, name
            assert store.metrics.read_amplification == 0.0, name

    def test_empty_store_snapshot_has_no_nan_or_inf(self):
        import math

        for store in self._fresh_stores():
            name = type(store).__name__
            for key, value in store.metrics.snapshot().items():
                if isinstance(value, float):
                    assert math.isfinite(value), f"{name}.{key} = {value}"

    def test_read_only_store_write_amplification_zero(self):
        """Gets without any puts: user_bytes_written stays 0, so write
        amplification must remain 0.0 even if internal reads happened."""
        import pytest

        from repro.errors import KeyNotFoundError
        from repro.kvstore.memdb import MemoryKVStore

        store = MemoryKVStore()
        with pytest.raises(KeyNotFoundError):
            store.get(b"absent")
        assert store.metrics.user_gets == 1
        assert store.metrics.write_amplification == 0.0

    def test_write_only_store_read_amplification_zero(self):
        from repro.kvstore.lsm.store import LSMStore

        store = LSMStore()
        store.put(b"k", b"v")
        assert store.metrics.user_gets == 0
        assert store.metrics.read_amplification == 0.0


class TestLevelStats:
    def test_defaults(self):
        stats = LevelStats(level=2)
        assert stats.num_tables == 0
        assert stats.extra == {}
