"""Per-block statistics tests."""

from __future__ import annotations

from repro.core.blockstats import BlockStatsAnalyzer, slice_blocks
from repro.core.trace import OpType, TraceRecord


def R(op, block, key=b"A\x01"):
    return TraceRecord(op, key, 10, block)


class TestBlockProfile:
    def test_phase_separation_perfect(self):
        analyzer = BlockStatsAnalyzer().consume(
            [R(OpType.READ, 1), R(OpType.READ, 1), R(OpType.WRITE, 1)]
        )
        assert analyzer.profile(1).phase_separation == 1.0

    def test_phase_separation_interleaved(self):
        analyzer = BlockStatsAnalyzer().consume(
            [R(OpType.READ, 1), R(OpType.WRITE, 1), R(OpType.READ, 1)]
        )
        assert analyzer.profile(1).phase_separation == 0.5

    def test_no_reads_is_fully_separated(self):
        analyzer = BlockStatsAnalyzer().consume([R(OpType.WRITE, 1)])
        assert analyzer.profile(1).phase_separation == 1.0

    def test_counts_by_kind(self):
        analyzer = BlockStatsAnalyzer().consume(
            [
                R(OpType.READ, 2),
                R(OpType.WRITE, 2),
                R(OpType.UPDATE, 2),
                R(OpType.DELETE, 2),
                R(OpType.SCAN, 2),
            ]
        )
        profile = analyzer.profile(2)
        assert profile.reads == 1
        assert profile.puts == 2
        assert profile.deletes == 1
        assert profile.scans == 1
        assert profile.total == 5

    def test_deletes_count_as_mutation_for_phasing(self):
        analyzer = BlockStatsAnalyzer().consume(
            [R(OpType.DELETE, 3), R(OpType.READ, 3)]
        )
        assert analyzer.profile(3).phase_separation == 0.0


class TestAnalyzer:
    def test_blocks_ordered(self):
        analyzer = BlockStatsAnalyzer().consume(
            [R(OpType.READ, 5), R(OpType.READ, 2), R(OpType.READ, 9)]
        )
        assert [p.block for p in analyzer.profiles()] == [2, 5, 9]

    def test_means(self):
        analyzer = BlockStatsAnalyzer().consume(
            [R(OpType.READ, 1)] * 4 + [R(OpType.WRITE, 2)] * 2
        )
        assert analyzer.mean_ops_per_block() == 3.0
        assert analyzer.num_blocks == 2

    def test_unknown_block_empty_profile(self):
        analyzer = BlockStatsAnalyzer()
        assert analyzer.profile(7).total == 0

    def test_read_share_distribution(self):
        analyzer = BlockStatsAnalyzer().consume(
            [R(OpType.READ, 1), R(OpType.WRITE, 1)]  # 50% reads
            + [R(OpType.READ, 2)]  # 100% reads
        )
        histogram = analyzer.read_share_distribution()
        assert histogram[5] == 1
        assert histogram[9] == 1

    def test_busiest_blocks(self):
        analyzer = BlockStatsAnalyzer().consume(
            [R(OpType.READ, 1)] * 5 + [R(OpType.READ, 2)] * 2
        )
        busiest = analyzer.busiest_blocks(1)
        assert busiest[0].block == 1

    def test_render(self):
        analyzer = BlockStatsAnalyzer().consume([R(OpType.READ, 1)])
        assert "1 blocks" in analyzer.render()


class TestSliceBlocks:
    def test_half_open_range(self):
        records = [R(OpType.READ, b) for b in range(10)]
        window = slice_blocks(records, 3, 6)
        assert [r.block for r in window] == [3, 4, 5]

    def test_empty_range(self):
        records = [R(OpType.READ, b) for b in range(5)]
        assert slice_blocks(records, 7, 9) == []


class TestOnRealTrace:
    """Geth's I/O discipline shows up in the generated traces."""

    def test_blocks_are_two_phase(self, trace_pair):
        cache_result, _ = trace_pair
        analyzer = BlockStatsAnalyzer().consume(cache_result.records)
        # Reads mostly precede the write burst within a block; the
        # residue comes from background work trailing the batch commit
        # (freezer reads/scans), which is genuinely interleaved in Geth
        # too (it runs in background goroutines).
        assert analyzer.mean_phase_separation() > 0.6
        # The median block is cleanly two-phase.
        separations = sorted(p.phase_separation for p in analyzer.profiles() if p.reads)
        assert separations[len(separations) // 2] > 0.8

    def test_every_measured_block_present(self, trace_pair):
        cache_result, _ = trace_pair
        analyzer = BlockStatsAnalyzer().consume(cache_result.records)
        # 80 measured blocks (+ the startup/shutdown pseudo-blocks).
        assert analyzer.num_blocks >= cache_result.blocks_processed
