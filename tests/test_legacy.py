"""Legacy hash-keyed storage mirror and EIP-4444 history expiry tests."""

from __future__ import annotations

import pytest

from repro.errors import FreezerError
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.freezer import Freezer
from repro.gethdb.legacy import HashSchemeMirror
from repro.sync.driver import DBConfig as DriverDBConfig
from repro.sync.driver import FullSyncDriver, SyncConfig
from repro.trie.nodes import LeafNode, encode_node
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

TINY = WorkloadConfig(
    seed=42, initial_eoa_accounts=200, initial_contracts=30, txs_per_block=6
)


class TestHashSchemeMirror:
    def test_observe_flush_stores_by_hash(self):
        mirror = HashSchemeMirror()
        blob = encode_node(LeafNode(suffix=(1, 2), value=b"v"))
        mirror.observe_flush([blob])
        assert mirror.total_nodes == 1
        assert mirror.stats.nodes_written == 1

    def test_duplicate_blobs_dedup(self):
        mirror = HashSchemeMirror()
        blob = encode_node(LeafNode(suffix=(1, 2), value=b"v"))
        mirror.observe_flush([blob, blob])
        assert mirror.total_nodes == 1
        assert mirror.stats.duplicate_writes == 1

    def test_stale_versions_accumulate(self):
        mirror = HashSchemeMirror()
        for version in range(5):
            blob = encode_node(LeafNode(suffix=(1,), value=b"v%d" % version))
            mirror.observe_flush([blob])
        # Five versions of the "same" logical node survive.
        assert mirror.total_nodes == 5

    def test_root_retention_window(self):
        mirror = HashSchemeMirror(retain_roots=16)
        for i in range(200):
            mirror.observe_root(bytes([i % 256]) * 32)
        assert len(mirror._live_roots) == 16


class TestMirroredSync:
    @pytest.fixture(scope="class")
    def mirrored_run(self):
        config = SyncConfig(
            db=DriverDBConfig.bare_trace_config(),
            warmup_blocks=10,
            mirror_hash_scheme=True,
        )
        driver = FullSyncDriver(config, WorkloadGenerator(TINY), name="mirrored")
        result = driver.run(40)
        return driver, result

    def test_mirror_populated(self, mirrored_run):
        driver, _ = mirrored_run
        assert driver.hash_scheme_mirror is not None
        assert driver.hash_scheme_mirror.total_nodes > 100

    def test_hash_scheme_stores_more_nodes_than_path_scheme(self, mirrored_run):
        driver, result = mirrored_run
        path_nodes = sum(
            1 for key, _ in result.store_snapshot if key[:1] in (b"A", b"O")
        )
        hash_nodes = driver.hash_scheme_mirror.total_nodes
        # The legacy scheme retains every stale version; path-based keeps
        # exactly one live node per path (§II-A's redundancy claim).
        assert hash_nodes > 1.5 * path_nodes

    def test_gc_reclaims_stale_versions(self, mirrored_run):
        driver, result = mirrored_run
        mirror = driver.hash_scheme_mirror
        mirror.set_retention(1)  # only the head state stays live
        before = mirror.total_nodes
        swept = mirror.collect_garbage()
        assert swept > 0
        assert mirror.total_nodes == before - swept
        assert mirror.stats.gc_nodes_traversed > 0
        # Post-GC, the live set is comparable to the path scheme's.
        path_nodes = sum(
            1 for key, _ in result.store_snapshot if key[:1] in (b"A", b"O")
        )
        assert mirror.total_nodes <= 1.5 * path_nodes


class TestHistoryExpiry:
    def _driver(self, **kwargs):
        config = SyncConfig(
            db=DriverDBConfig.bare_trace_config(),
            warmup_blocks=5,
            freezer_threshold=8,
            freezer_batch=8,
            **kwargs,
        )
        return FullSyncDriver(config, WorkloadGenerator(TINY), name="expiry")

    def test_disabled_by_default(self):
        driver = self._driver()
        driver.run(40)
        assert driver.freezer.expired_blocks == 0
        assert driver.freezer.history_tail == 0

    def test_expiry_bounds_ancient_data(self):
        driver = self._driver(history_expiry=16)
        driver.run(40)
        freezer = driver.freezer
        assert freezer.expired_blocks > 0
        assert freezer.history_tail > 0
        # Everything older than head - expiry is gone from the tables.
        assert all(n >= freezer.history_tail for n in freezer.tables.headers)
        # Retained window is bounded by the expiry horizon.
        assert freezer.frozen_blocks <= 16 + freezer.batch_blocks

    def test_expiry_costs_no_kv_operations(self):
        bounded = self._driver(history_expiry=16)
        unbounded = self._driver()
        r1 = bounded.run(40)
        r2 = unbounded.run(40)
        # Flat-file truncation is invisible at the KV interface.
        assert r1.records == r2.records

    def test_negative_expiry_rejected(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        with pytest.raises(FreezerError):
            Freezer(db, threshold=4, history_expiry=-1)
