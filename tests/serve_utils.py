"""Test harness for the trace service.

Runs the real daemon **in-process** on an ephemeral port, so the tests
exercise the genuine asyncio/TCP path without fixed ports or external
processes.  Determinism comes from the injectable time plumbing
(``ServeConfig.clock`` / ``ServeConfig.sleep``): tests pass a
:class:`VirtualClock`, and anything the server would wait out —
``sleep`` jobs, rate-bucket refills, blocked-admission retries —
advances only when the test calls :meth:`VirtualClock.advance`.  Wall
time never decides scheduling order; :func:`pump` just keeps the event
loop breathing while the virtual clock does the moving.
"""

from __future__ import annotations

import asyncio
import contextlib
import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.core.trace import write_trace_v2
from repro.obs.registry import MetricsRegistry
from repro.serve import ServeClient, ServeConfig, TraceServer

from tests.test_parallel import _random_records

#: Hard wall-time ceiling for any single awaited step; a correct run
#: never gets near it — it only turns a hang into a clean failure.
STEP_TIMEOUT = 30.0


def run(coro):
    """Run one async test body (the suite does not assume an asyncio
    pytest plugin)."""
    return asyncio.run(asyncio.wait_for(coro, timeout=STEP_TIMEOUT * 4))


def make_trace(path, n=2000, seed=11, chunk_size=173):
    """A small deterministic v2 trace; returns its record list."""
    records = _random_records(n=n, seed=seed)
    write_trace_v2(path, records, chunk_size=chunk_size)
    return records


class VirtualClock:
    """A manually advanced clock with an async sleep shim.

    ``clock()`` reads the current virtual time; ``await sleep(s)``
    parks the caller until :meth:`advance` moves time past its
    deadline.  Wake-ups fire in deadline order (FIFO on ties), so runs
    are reproducible down to scheduling order.
    """

    def __init__(self, start: float = 1000.0) -> None:
        self._now = float(start)
        self._seq = itertools.count()
        #: (deadline, seq, future) of parked sleepers
        self._sleepers: List[Tuple[float, int, asyncio.Future]] = []

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    async def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(
            self._sleepers, (self._now + seconds, next(self._seq), future)
        )
        await future

    def advance(self, seconds: float) -> None:
        """Move time forward and wake every sleeper now due."""
        self._now += seconds
        while self._sleepers and self._sleepers[0][0] <= self._now + 1e-9:
            _, _, future = heapq.heappop(self._sleepers)
            if not future.done():
                future.set_result(None)

    @property
    def sleeping(self) -> int:
        return sum(1 for _, _, f in self._sleepers if not f.done())


async def pump(
    clock: Optional[VirtualClock] = None,
    *,
    until: Optional[Callable[[], bool]] = None,
    step: float = 0.05,
    rounds: int = 400,
) -> bool:
    """Drive the loop (and the virtual clock, if any) until ``until``.

    Each round advances the virtual clock by ``step`` and briefly
    yields so sockets and callbacks drain.  Returns whether ``until``
    became true within the round budget.
    """
    for _ in range(rounds):
        if until is not None and until():
            return True
        if clock is not None:
            clock.advance(step)
        await asyncio.sleep(0.001)
    return until() if until is not None else True


@contextlib.asynccontextmanager
async def serve_session(traces, *, registry=None, **config_kwargs):
    """The in-process daemon on an ephemeral port.

    Yields ``(server, port)``; on exit drains (idempotent with any
    shutdown the test already triggered) and asserts the server's
    zero-pending-tasks guarantee.
    """
    if registry is None:
        registry = MetricsRegistry()
    config = ServeConfig(traces=dict(traces), port=0, **config_kwargs)
    server = TraceServer(config, registry=registry)
    port = await server.start()
    try:
        yield server, port
    finally:
        await asyncio.wait_for(server.shutdown("drain"), timeout=STEP_TIMEOUT)
        assert_no_server_tasks(server)


@contextlib.asynccontextmanager
async def connect(port: int, tenant: str):
    client = ServeClient("127.0.0.1", port, tenant)
    try:
        yield await client.connect()
    finally:
        await asyncio.wait_for(client.close(), timeout=STEP_TIMEOUT)


def assert_no_server_tasks(server: Optional[TraceServer] = None) -> None:
    """After shutdown, no server-side asyncio task may remain pending.

    Checks both the server's own task ledger (workers, client handlers,
    spawned shutdowns) and, globally, anything named ``repro-serve-*``
    — excluding client reader tasks (``repro-serve-client-*``), which
    the test's clients own and close with.
    """
    leaked = []
    if server is not None:
        leaked.extend(task for task in server._tasks if not task.done())
    for task in asyncio.all_tasks():
        name = task.get_name()
        if (
            not task.done()
            and name.startswith("repro-serve-")
            and not name.startswith("repro-serve-client-")
            and task not in leaked
        ):
            leaked.append(task)
    assert not leaked, f"pending tasks after shutdown: {leaked!r}"


def counter_value(registry: MetricsRegistry, name: str, **labels) -> float:
    """One labeled counter's value from a registry snapshot (0.0 when
    the series does not exist)."""
    try:
        return float(registry.snapshot().value(name, **labels))
    except KeyError:
        return 0.0
