"""Class taxonomy and prefix classifier tests."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.classes import (
    DOMINANT_CLASSES,
    SINGLETON_CLASSES,
    SINGLETON_KEYS,
    TABLE_ORDER,
    KVClass,
    class_by_name,
    classify_key,
)
from repro.gethdb import schema


class TestTaxonomy:
    def test_29_classes_plus_unknown(self):
        assert len(KVClass) == 30  # 29 paper classes + UNKNOWN

    def test_table_order_covers_all_29(self):
        assert len(TABLE_ORDER) == 29
        assert len(set(TABLE_ORDER)) == 29
        assert KVClass.UNKNOWN not in TABLE_ORDER

    def test_15_singletons(self):
        assert len(SINGLETON_CLASSES) == 15

    def test_five_dominant_classes(self):
        assert len(DOMINANT_CLASSES) == 5

    def test_abbreviations(self):
        assert KVClass.TRIE_NODE_ACCOUNT.abbreviation == "TA"
        assert KVClass.SNAPSHOT_STORAGE.abbreviation == "SS"
        assert KVClass.LAST_FAST.abbreviation == "LF"
        assert KVClass.CODE.abbreviation == "C"

    def test_class_by_name(self):
        assert class_by_name("TxLookup") is KVClass.TX_LOOKUP
        assert class_by_name("NoSuchClass") is None


class TestClassifier:
    def test_every_singleton_key(self):
        for key, expected in SINGLETON_KEYS.items():
            assert classify_key(key) is expected

    def test_schema_key_constructors_classify_correctly(self):
        h = b"\x11" * 32
        cases = [
            (schema.header_key(5, h), KVClass.BLOCK_HEADER),
            (schema.header_td_key(5, h), KVClass.BLOCK_HEADER),
            (schema.canonical_hash_key(5), KVClass.BLOCK_HEADER),
            (schema.header_number_key(h), KVClass.HEADER_NUMBER),
            (schema.body_key(5, h), KVClass.BLOCK_BODY),
            (schema.receipts_key(5, h), KVClass.BLOCK_RECEIPTS),
            (schema.tx_lookup_key(h), KVClass.TX_LOOKUP),
            (schema.bloom_bits_key(3, 1, h), KVClass.BLOOM_BITS),
            (schema.bloom_bits_index_key(b"count"), KVClass.BLOOM_BITS_INDEX),
            (schema.snapshot_account_key(h), KVClass.SNAPSHOT_ACCOUNT),
            (schema.snapshot_storage_key(h, h), KVClass.SNAPSHOT_STORAGE),
            (schema.code_key(h), KVClass.CODE),
            (schema.account_trie_node_key((1, 2)), KVClass.TRIE_NODE_ACCOUNT),
            (schema.storage_trie_node_key(h, (3,)), KVClass.TRIE_NODE_STORAGE),
            (schema.state_id_key(h), KVClass.STATE_ID),
            (schema.skeleton_header_key(5), KVClass.SKELETON_HEADER),
            (schema.ethereum_genesis_key(h), KVClass.ETHEREUM_GENESIS),
            (schema.ethereum_config_key(h), KVClass.ETHEREUM_CONFIG),
        ]
        for key, expected in cases:
            assert classify_key(key) is expected, (key, expected)

    def test_singletons_beat_prefix_collisions(self):
        # 'LastHeader' starts with 'L' (the StateID prefix);
        # 'SnapshotJournal' starts with 'S' (the SkeletonHeader prefix).
        assert classify_key(b"LastHeader") is KVClass.LAST_HEADER
        assert classify_key(b"LastBlock") is KVClass.LAST_BLOCK
        assert classify_key(b"SnapshotJournal") is KVClass.SNAPSHOT_JOURNAL
        assert classify_key(b"L" + b"\x00" * 32) is KVClass.STATE_ID
        assert classify_key(b"S" + b"\x00" * 8) is KVClass.SKELETON_HEADER

    def test_unknown_keys(self):
        assert classify_key(b"") is KVClass.UNKNOWN
        assert classify_key(b"\xfe unknown") is KVClass.UNKNOWN

    @given(st.binary(min_size=1, max_size=64))
    def test_total_function(self, key):
        # Every byte string classifies to exactly one class, no crash.
        assert isinstance(classify_key(key), KVClass)


class TestKeySizes:
    """Key layouts must land on Table I's reported key sizes."""

    def test_fixed_key_sizes_match_table1(self):
        h = b"\x22" * 32
        assert len(schema.snapshot_storage_key(h, h)) == 65
        assert len(schema.tx_lookup_key(h)) == 33
        assert len(schema.snapshot_account_key(h)) == 33
        assert len(schema.header_number_key(h)) == 33
        assert len(schema.bloom_bits_key(0, 0, h)) == 43
        assert len(schema.code_key(h)) == 33
        assert len(schema.skeleton_header_key(1)) == 9
        assert len(schema.receipts_key(1, h)) == 41
        assert len(schema.body_key(1, h)) == 41
        assert len(schema.state_id_key(h)) == 33
        assert len(schema.ethereum_genesis_key(h)) == 49
        assert len(schema.ethereum_config_key(h)) == 48

    def test_singleton_key_sizes_match_table1(self):
        expected = {
            b"SnapshotJournal": 15,
            b"LastStateID": 11,
            b"unclean-shutdown": 16,
            b"SnapshotGenerator": 17,
            b"TrieJournal": 11,
            b"DatabaseVersion": 15,
            b"LastBlock": 9,
            b"SnapshotRoot": 12,
            b"SkeletonSyncStatus": 18,
            b"LastHeader": 10,
            b"SnapshotRecovery": 16,
            b"TransactionIndexTail": 20,
            b"LastFast": 8,
        }
        for key, size in expected.items():
            assert len(key) == size

    def test_header_key_variants(self):
        h = b"\x33" * 32
        assert len(schema.header_key(7, h)) == 41
        assert len(schema.header_td_key(7, h)) == 42
        assert len(schema.canonical_hash_key(7)) == 10
