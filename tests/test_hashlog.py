"""Hash-indexed append-only log store tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyNotFoundError
from repro.kvstore.hashlog import HashLogStore


class TestHashLogStore:
    def test_roundtrip(self):
        store = HashLogStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert store.has(b"k")
        assert len(store) == 1

    def test_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            HashLogStore().get(b"missing")

    def test_delete_is_immediate_no_tombstone(self):
        store = HashLogStore()
        store.put(b"k", b"v")
        store.delete(b"k")
        assert not store.has(b"k")
        # No tombstones ever written: that's the whole point.
        assert store.metrics.tombstones_written == 0

    def test_delete_missing_is_noop(self):
        store = HashLogStore()
        store.delete(b"never")
        assert store.metrics.user_deletes == 1

    def test_overwrite_marks_old_record_dead(self):
        store = HashLogStore(segment_bytes=10**9)  # never GC
        store.put(b"k", b"v" * 50)
        store.put(b"k", b"w" * 10)
        assert store.get(b"k") == b"w" * 10
        assert store.dead_bytes > 0

    def test_gc_reclaims_dead_segments(self):
        store = HashLogStore(segment_bytes=1024, gc_dead_ratio=0.4)
        keys = [b"key%03d" % i for i in range(200)]
        for key in keys:
            store.put(key, b"v" * 20)
        before = store.log_bytes
        for key in keys[:150]:
            store.delete(key)
        assert store.metrics.gc_bytes_read > 0
        assert store.log_bytes < before
        for key in keys[150:]:
            assert store.get(key) == b"v" * 20

    def test_gc_rewrites_live_records_intact(self):
        store = HashLogStore(segment_bytes=512, gc_dead_ratio=0.3)
        for i in range(100):
            store.put(b"key%03d" % i, b"value%03d" % i)
        for i in range(0, 100, 2):
            store.delete(b"key%03d" % i)
        for i in range(1, 100, 2):
            assert store.get(b"key%03d" % i) == b"value%03d" % i

    def test_scan_is_sorted(self):
        store = HashLogStore()
        for byte in (9, 2, 7, 4):
            store.put(bytes([byte]), b"v")
        keys = [k for k, _ in store.scan(b"")]
        assert keys == sorted(keys)

    def test_scan_range(self):
        store = HashLogStore()
        for byte in range(10):
            store.put(bytes([byte]), bytes([byte]))
        got = [k[0] for k, _ in store.scan(bytes([2]), bytes([6]))]
        assert got == [2, 3, 4, 5]

    def test_write_amplification_no_deletes_is_log_only(self):
        store = HashLogStore(segment_bytes=10**9)
        for i in range(100):
            store.put(b"key%03d" % i, b"v" * 50)
        # Only log framing overhead; no compaction rewrites.
        assert store.metrics.gc_bytes_written == 0
        assert store.metrics.write_amplification < 1.5

    def test_dict_equivalence_randomized(self):
        rng = random.Random(5)
        store = HashLogStore(segment_bytes=2048, gc_dead_ratio=0.5)
        model = {}
        for step in range(2500):
            key = b"key%03d" % rng.randrange(300)
            if rng.random() < 0.6:
                value = b"val%d" % step
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        assert dict(store.scan(b"")) == model


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=30),
            st.binary(min_size=1, max_size=24),
        ),
        max_size=120,
    )
)
def test_hashlog_matches_dict_property(ops):
    store = HashLogStore(segment_bytes=512, gc_dead_ratio=0.4)
    model = {}
    for is_put, key_index, value in ops:
        key = b"key%02d" % key_index
        if is_put:
            store.put(key, value)
            model[key] = value
        else:
            store.delete(key)
            model.pop(key, None)
    assert dict(store.scan(b"")) == model
    assert len(store) == len(model)
