"""Byte-volume I/O analyzer tests."""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.iostats import IOStatsAnalyzer
from repro.core.trace import OpType, TraceRecord

TXL = b"l" + b"\x01" * 32  # 33-byte key
BODY = b"b" + b"\x00" * 8 + b"\x02" * 32  # 41-byte key


class TestAccounting:
    def test_read_bytes_include_key_and_value(self):
        analyzer = IOStatsAnalyzer().consume(
            [TraceRecord(OpType.READ, BODY, 1000, 1)]
        )
        assert analyzer.stats_for(KVClass.BLOCK_BODY).bytes_read == 41 + 1000

    def test_write_bytes(self):
        analyzer = IOStatsAnalyzer().consume(
            [
                TraceRecord(OpType.WRITE, TXL, 4, 1),
                TraceRecord(OpType.UPDATE, TXL, 4, 1),
            ]
        )
        assert analyzer.stats_for(KVClass.TX_LOOKUP).bytes_written == 2 * (33 + 4)

    def test_delete_moves_only_key(self):
        analyzer = IOStatsAnalyzer().consume([TraceRecord(OpType.DELETE, TXL, 0, 1)])
        stats = analyzer.stats_for(KVClass.TX_LOOKUP)
        assert stats.bytes_deleted_keys == 33
        assert stats.bytes_written == 0

    def test_scan_bytes(self):
        analyzer = IOStatsAnalyzer().consume([TraceRecord(OpType.SCAN, b"a", 500, 1)])
        assert analyzer.stats_for(KVClass.SNAPSHOT_ACCOUNT).bytes_scanned == 1 + 500

    def test_totals_and_shares(self):
        analyzer = IOStatsAnalyzer().consume(
            [
                TraceRecord(OpType.READ, BODY, 959, 1),  # 1000 bytes
                TraceRecord(OpType.WRITE, TXL, 967, 1),  # 1000 bytes
            ]
        )
        assert analyzer.total_bytes() == 2000
        assert analyzer.byte_share(KVClass.BLOCK_BODY) == 50.0
        assert analyzer.total_bytes_read() == 1000
        assert analyzer.total_bytes_written() == 1000

    def test_mean_bytes_per_op(self):
        analyzer = IOStatsAnalyzer().consume(
            [
                TraceRecord(OpType.READ, TXL, 7, 1),
                TraceRecord(OpType.READ, TXL, 27, 1),
            ]
        )
        # (33+7 + 33+27) / 2 ops = 50 bytes per op
        assert analyzer.stats_for(KVClass.TX_LOOKUP).mean_bytes_per_op == 50.0

    def test_observed_ordering_by_bytes(self):
        analyzer = IOStatsAnalyzer().consume(
            [
                TraceRecord(OpType.READ, TXL, 10, 1),
                TraceRecord(OpType.READ, BODY, 100_000, 1),
            ]
        )
        assert analyzer.observed_classes()[0] is KVClass.BLOCK_BODY

    def test_render(self):
        analyzer = IOStatsAnalyzer().consume([TraceRecord(OpType.READ, TXL, 10, 1)])
        rendered = analyzer.render()
        assert "TxLookup" in rendered and "MB moved" in rendered

    def test_empty(self):
        analyzer = IOStatsAnalyzer()
        assert analyzer.total_bytes() == 0
        assert analyzer.byte_share(KVClass.CODE) == 0.0


class TestOnRealTrace:
    def test_byte_view_reweights_classes(self, trace_pair):
        """Per the paper's size findings: block data moves outsized bytes
        relative to its op count, TxLookup the opposite."""
        cache_result, _ = trace_pair
        from repro.core.opdist import OpDistAnalyzer

        iostats = IOStatsAnalyzer().consume(cache_result.records)
        opdist = OpDistAnalyzer(track_keys=False).consume(cache_result.records)

        body_ops = opdist.class_share(KVClass.BLOCK_BODY)
        body_bytes = iostats.byte_share(KVClass.BLOCK_BODY)
        assert body_bytes > 2 * body_ops

        txl_ops = opdist.class_share(KVClass.TX_LOOKUP)
        txl_bytes = iostats.byte_share(KVClass.TX_LOOKUP)
        assert txl_bytes < txl_ops
