"""Hybrid KV store tests: routing, interface equivalence, I/O accounting."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.classes import KVClass
from repro.errors import KeyNotFoundError
from repro.hybrid import (
    DEFAULT_ROUTING,
    HybridKVStore,
    LogThenHashStore,
    Route,
    route_for_class,
)
from repro.kvstore.lsm import LSMConfig, LSMStore


class TestRouting:
    def test_scan_classes_go_ordered(self):
        for kv_class in (
            KVClass.SNAPSHOT_ACCOUNT,
            KVClass.SNAPSHOT_STORAGE,
            KVClass.BLOCK_HEADER,
        ):
            assert route_for_class(kv_class) is Route.ORDERED

    def test_delete_heavy_classes_go_hash_log(self):
        assert route_for_class(KVClass.TX_LOOKUP) is Route.HASH_LOG
        assert route_for_class(KVClass.BLOCK_BODY) is Route.HASH_LOG

    def test_world_state_goes_log_then_hash(self):
        for kv_class in (
            KVClass.TRIE_NODE_ACCOUNT,
            KVClass.TRIE_NODE_STORAGE,
            KVClass.CODE,
        ):
            assert route_for_class(kv_class) is Route.LOG_THEN_HASH

    def test_unlisted_class_defaults(self):
        assert route_for_class(KVClass.LAST_HEADER) is Route.DEFAULT
        assert route_for_class(KVClass.UNKNOWN) is Route.DEFAULT


class TestLogThenHashStore:
    def test_roundtrip(self):
        store = LogThenHashStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert store.has(b"k")

    def test_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            LogThenHashStore().get(b"missing")

    def test_promotion_on_first_read(self):
        store = LogThenHashStore()
        for i in range(10):
            store.put(b"key%d" % i, b"v%d" % i)
        assert store.promotions == 0
        store.get(b"key3")
        assert store.promotions == 1
        assert store.promoted_fraction == pytest.approx(0.1)

    def test_unread_keys_never_promoted(self):
        store = LogThenHashStore()
        for i in range(100):
            store.put(b"key%d" % i, b"v")
        assert store.promoted_fraction == 0.0

    def test_promoted_copy_tracks_updates(self):
        store = LogThenHashStore()
        store.put(b"k", b"v1")
        store.get(b"k")  # promote
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete_demotes(self):
        store = LogThenHashStore()
        store.put(b"k", b"v")
        store.get(b"k")
        store.delete(b"k")
        assert not store.has(b"k")
        with pytest.raises(KeyNotFoundError):
            store.get(b"k")

    def test_gc_preserves_live_records(self):
        store = LogThenHashStore(segment_bytes=512, gc_dead_ratio=0.3)
        for i in range(100):
            store.put(b"key%03d" % i, b"value" * 4)
        for i in range(0, 100, 2):
            store.delete(b"key%03d" % i)
        for i in range(1, 100, 2):
            assert store.get(b"key%03d" % i) == b"value" * 4

    def test_no_tombstones_ever(self):
        store = LogThenHashStore()
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.metrics.tombstones_written == 0

    def test_scan_sorted(self):
        store = LogThenHashStore()
        for byte in (8, 1, 5):
            store.put(bytes([byte]), b"v")
        keys = [k for k, _ in store.scan(b"")]
        assert keys == sorted(keys)


def _sample_keys():
    """Keys spanning all four routes."""
    return {
        "ordered": b"a" + b"\x01" * 32,  # SnapshotAccount
        "hash_log": b"l" + b"\x02" * 32,  # TxLookup
        "log_then_hash": b"A\x03\x04",  # TrieNodeAccount
        "default": b"LastHeader",  # singleton
    }


class TestHybridStore:
    def test_operations_route_to_expected_substores(self):
        store = HybridKVStore()
        keys = _sample_keys()
        for key in keys.values():
            store.put(key, b"v:" + key[:1])
        assert store.ordered.has(keys["ordered"])
        assert store.hash_log.has(keys["hash_log"])
        assert store.log_then_hash.has(keys["log_then_hash"])
        assert store.default.has(keys["default"])

    def test_interface_roundtrip_all_routes(self):
        store = HybridKVStore()
        for key in _sample_keys().values():
            store.put(key, b"value-" + key[:2])
            assert store.get(key) == b"value-" + key[:2]
            store.delete(key)
            assert not store.has(key)

    def test_scan_merges_all_substores_in_order(self):
        store = HybridKVStore()
        keys = sorted(_sample_keys().values())
        for key in keys:
            store.put(key, b"v")
        got = [k for k, _ in store.scan(b"")]
        assert got == keys

    def test_len_sums_substores(self):
        store = HybridKVStore()
        for key in _sample_keys().values():
            store.put(key, b"v")
        assert len(store) == 4

    def test_combined_metrics(self):
        store = HybridKVStore()
        for key in _sample_keys().values():
            store.put(key, b"v")
        metrics = store.combined_metrics()
        assert metrics.user_puts == 4

    def test_per_route_metrics(self):
        store = HybridKVStore()
        store.put(b"l" + b"\x01" * 32, b"v")
        per_route = store.per_route_metrics()
        assert per_route[Route.HASH_LOG].user_puts == 1
        assert per_route[Route.ORDERED].user_puts == 0

    def test_btree_ordered_structure(self):
        store = HybridKVStore(ordered_structure="btree")
        from repro.kvstore.btree import BPlusTreeStore

        assert isinstance(store.ordered, BPlusTreeStore)
        key = b"a" + b"\x01" * 32  # SnapshotAccount -> ordered route
        store.put(key, b"acct")
        assert store.get(key) == b"acct"
        assert [k for k, _ in store.scan(key[:1])] == [key]

    def test_btree_variant_matches_lsm_variant(self):
        rng = random.Random(21)
        lsm_variant = HybridKVStore(ordered_structure="lsm")
        btree_variant = HybridKVStore(ordered_structure="btree")
        keys = [b"a" + bytes([i]) * 32 for i in range(40)]
        keys += [b"h" + bytes(8) + bytes([i]) * 32 for i in range(20)]
        for step in range(800):
            key = rng.choice(keys)
            if rng.random() < 0.7:
                value = b"v%d" % step
                lsm_variant.put(key, value)
                btree_variant.put(key, value)
            else:
                lsm_variant.delete(key)
                btree_variant.delete(key)
        assert dict(lsm_variant.scan(b"")) == dict(btree_variant.scan(b""))

    def test_invalid_ordered_structure(self):
        with pytest.raises(ValueError):
            HybridKVStore(ordered_structure="skiplist")

    def test_custom_routing(self):
        routing = dict(DEFAULT_ROUTING)
        routing[KVClass.TX_LOOKUP] = Route.ORDERED
        store = HybridKVStore(routing=routing)
        store.put(b"l" + b"\x01" * 32, b"v")
        assert store.ordered.has(b"l" + b"\x01" * 32)

    def test_tombstone_avoidance_vs_lsm(self):
        """Delete-heavy TxLookup traffic: hybrid writes no tombstones."""
        lsm = LSMStore(LSMConfig(memtable_bytes=2048))
        hybrid = HybridKVStore(
            lsm_config=LSMConfig(memtable_bytes=2048)
        )
        keys = [b"l" + bytes([i % 256, i // 256]) + b"\x00" * 30 for i in range(400)]
        for store in (lsm, hybrid):
            for key in keys:
                store.put(key, b"blocknum")
            for key in keys[:300]:
                store.delete(key)
        assert lsm.metrics.tombstones_written == 300
        assert hybrid.combined_metrics().tombstones_written == 0

    def test_dict_equivalence_randomized(self):
        rng = random.Random(12)
        store = HybridKVStore()
        model = {}
        key_pool = list(_sample_keys().values()) + [
            b"A" + bytes([i]) for i in range(20)
        ] + [b"l" + bytes([i]) * 32 for i in range(20)]
        for step in range(1500):
            key = rng.choice(key_pool)
            action = rng.random()
            if action < 0.6:
                value = b"v%d" % step
                store.put(key, value)
                model[key] = value
            elif action < 0.85:
                store.delete(key)
                model.pop(key, None)
            else:
                got = store.get_or_none(key)
                assert got == model.get(key)
        assert dict(store.scan(b"")) == model


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.booleans(),
            st.sampled_from(
                [b"A\x01", b"l" + b"\x01" * 32, b"a" + b"\x02" * 32, b"LastFast", b"c" + b"\x03" * 32]
            ),
            st.binary(min_size=1, max_size=16),
        ),
        max_size=100,
    )
)
def test_hybrid_matches_dict_property(ops):
    store = HybridKVStore()
    model = {}
    for is_put, key, value in ops:
        if is_put:
            store.put(key, value)
            model[key] = value
        else:
            store.delete(key)
            model.pop(key, None)
    assert dict(store.scan(b"")) == model
    assert len(store) == len(model)
