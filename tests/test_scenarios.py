"""Workload scenario preset tests."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workload import SCENARIOS, WorkloadGenerator, scenario


class TestScenarioLookup:
    def test_all_presets_construct_generators(self):
        for name in SCENARIOS:
            WorkloadGenerator(scenario(name))  # no exception

    def test_unknown_scenario(self):
        with pytest.raises(WorkloadError):
            scenario("casino")

    def test_overrides_applied(self):
        config = scenario("defi", seed=7, txs_per_block=40)
        assert config.seed == 7
        assert config.txs_per_block == 40
        assert config.contract_call_fraction == SCENARIOS["defi"].contract_call_fraction

    def test_no_override_returns_preset(self):
        assert scenario("mainnet") is SCENARIOS["mainnet"]


class TestScenarioCharacter:
    """Each preset's mix must actually skew the generated traffic."""

    def _kind_counts(self, name: str, blocks: int = 60):
        from collections import Counter

        generator = WorkloadGenerator(
            scenario(name, initial_eoa_accounts=400, initial_contracts=60, txs_per_block=20)
        )
        kinds = Counter()
        for number in range(1, blocks):
            for plan in generator.make_block_plan(number).tx_plans:
                kinds[plan.kind] += 1
        return kinds

    def test_defi_is_call_dominated(self):
        kinds = self._kind_counts("defi")
        total = sum(kinds.values())
        assert kinds["call"] / total > 0.7

    def test_payments_is_transfer_dominated(self):
        kinds = self._kind_counts("payments")
        total = sum(kinds.values())
        assert kinds["transfer"] / total > 0.75

    def test_nft_mint_creates_more_than_mainnet(self):
        nft = self._kind_counts("nft-mint")
        mainnet = self._kind_counts("mainnet")
        nft_rate = nft["create"] / sum(nft.values())
        mainnet_rate = mainnet["create"] / sum(mainnet.values())
        assert nft_rate > 2 * mainnet_rate

    def test_defi_touches_more_slots_per_call(self):
        defi_gen = WorkloadGenerator(
            scenario("defi", initial_eoa_accounts=400, initial_contracts=60)
        )
        mainnet_gen = WorkloadGenerator(
            scenario("mainnet", initial_eoa_accounts=400, initial_contracts=60)
        )

        def mean_slots(generator):
            slots = calls = 0
            for number in range(1, 40):
                for plan in generator.make_block_plan(number).tx_plans:
                    if plan.kind == "call":
                        calls += 1
                        slots += len(plan.slot_reads) + len(plan.slot_writes)
            return slots / max(1, calls)

        assert mean_slots(defi_gen) > 1.5 * mean_slots(mainnet_gen)
