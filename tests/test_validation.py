"""Block validation tests."""

from __future__ import annotations

import pytest

from repro import rlp
from repro.chain.blocks import Block, BlockBody, Header
from repro.chain.transactions import Log, Receipt, Transaction, block_bloom
from repro.chain.validation import (
    derive_list_root,
    derive_receipts_root,
    derive_transactions_root,
    validate_body,
    validate_execution_outcome,
    validate_header_chain,
)
from repro.errors import InvalidBlockError


def _tx(nonce: int) -> Transaction:
    return Transaction(nonce, b"\xaa" * 20, b"\xbb" * 20, nonce * 10, 21000)


def _header(number=2, parent=None, **kwargs):
    defaults = dict(
        number=number,
        parent_hash=parent.hash if parent else b"\x01" * 32,
        state_root=b"\x02" * 32,
        timestamp=1_700_000_000 + number * 12,
    )
    defaults.update(kwargs)
    return Header(**defaults)


class TestDerivedRoots:
    def test_empty_list_root_is_empty_trie(self):
        from repro.trie.trie import EMPTY_ROOT

        assert derive_list_root([]) == EMPTY_ROOT

    def test_root_depends_on_content(self):
        assert derive_list_root([b"a"]) != derive_list_root([b"b"])

    def test_root_depends_on_order(self):
        assert derive_list_root([b"a", b"b"]) != derive_list_root([b"b", b"a"])

    def test_deterministic(self):
        items = [rlp.encode([i, b"payload"]) for i in range(20)]
        assert derive_list_root(items) == derive_list_root(items)

    def test_transactions_root_over_body(self):
        body = BlockBody(transactions=[_tx(1), _tx(2)])
        root = derive_transactions_root(body)
        assert root == derive_list_root([tx.encode() for tx in body.transactions])

    def test_receipts_root(self):
        receipts = [Receipt(1, 21000), Receipt(1, 42000)]
        assert derive_receipts_root(receipts) == derive_list_root(
            [r.encode() for r in receipts]
        )


class TestHeaderChain:
    def test_valid_chain_passes(self):
        parent = _header(number=1)
        child = _header(number=2, parent=parent)
        validate_header_chain(child, parent)

    def test_wrong_number(self):
        parent = _header(number=1)
        child = _header(number=5, parent=parent)
        with pytest.raises(InvalidBlockError, match="does not extend"):
            validate_header_chain(child, parent)

    def test_wrong_parent_hash(self):
        parent = _header(number=1)
        child = _header(number=2)  # random parent hash
        with pytest.raises(InvalidBlockError, match="parent hash"):
            validate_header_chain(child, parent)

    def test_timestamp_must_advance(self):
        parent = _header(number=1, timestamp=1000)
        child = _header(number=2, parent=parent, timestamp=1000)
        with pytest.raises(InvalidBlockError, match="timestamp"):
            validate_header_chain(child, parent)

    def test_gas_over_limit(self):
        parent = _header(number=1)
        child = _header(number=2, parent=parent, gas_used=40_000_000)
        with pytest.raises(InvalidBlockError, match="gas"):
            validate_header_chain(child, parent)


class TestBodyAndExecution:
    def _block(self):
        body = BlockBody(transactions=[_tx(1), _tx(2)])
        receipts = [
            Receipt(1, 21000, [Log(b"\xcc" * 20, [b"\x01" * 32])]),
            Receipt(1, 42000),
        ]
        header = _header(
            transactions_root=derive_transactions_root(body),
            receipts_root=derive_receipts_root(receipts),
            logs_bloom=block_bloom(receipts).to_bytes(),
        )
        return Block(header=header, body=body, receipts=receipts), receipts

    def test_valid_block_passes(self):
        block, receipts = self._block()
        validate_body(block)
        validate_execution_outcome(block, block.header.state_root, receipts)

    def test_tampered_body_rejected(self):
        block, receipts = self._block()
        block.body.transactions.append(_tx(99))
        with pytest.raises(InvalidBlockError, match="transactions root"):
            validate_body(block)

    def test_wrong_state_root_rejected(self):
        block, receipts = self._block()
        with pytest.raises(InvalidBlockError, match="state root"):
            validate_execution_outcome(block, b"\xee" * 32, receipts)

    def test_tampered_receipts_rejected(self):
        block, receipts = self._block()
        forged = receipts[:-1] + [Receipt(0, 42000)]
        with pytest.raises(InvalidBlockError, match="receipts root"):
            validate_execution_outcome(block, block.header.state_root, forged)


class TestDriverIntegration:
    def test_driver_builds_self_validating_blocks(self):
        from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
        from repro.workload.generator import WorkloadConfig, WorkloadGenerator

        workload = WorkloadConfig(
            seed=3, initial_eoa_accounts=200, initial_contracts=30, txs_per_block=6
        )
        driver = FullSyncDriver(
            SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=4),
            WorkloadGenerator(workload),
        )
        # validate_blocks defaults True: a full run IS the assertion.
        result = driver.run(10)
        assert result.blocks_processed == 10

    def test_validation_can_be_disabled(self):
        from repro.sync.driver import DBConfig, FullSyncDriver, SyncConfig
        from repro.workload.generator import WorkloadConfig, WorkloadGenerator

        workload = WorkloadConfig(
            seed=3, initial_eoa_accounts=200, initial_contracts=30, txs_per_block=6
        )
        driver = FullSyncDriver(
            SyncConfig(
                db=DBConfig.bare_trace_config(), warmup_blocks=2, validate_blocks=False
            ),
            WorkloadGenerator(workload),
        )
        result = driver.run(4)
        assert result.blocks_processed == 4
