"""Trace model and I/O tests."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.trace import (
    OpType,
    TraceReader,
    TraceRecord,
    TraceWriter,
    read_text_trace,
    read_trace,
    records_from_bytes,
    records_to_bytes,
    write_text_trace,
    write_trace,
)
from repro.errors import TraceFormatError


def _sample_records():
    return [
        TraceRecord(OpType.WRITE, b"lABCDEF", 100, 1),
        TraceRecord(OpType.READ, b"A\x00\x12", 42, 2),
        TraceRecord(OpType.DELETE, b"h" + b"\x01" * 40, 0, 3),
        TraceRecord(OpType.SCAN, b"a", 12345, 4),
        TraceRecord(OpType.UPDATE, b"LastHeader", 32, 5),
    ]


class TestOpType:
    def test_short_names_roundtrip(self):
        for op in OpType:
            assert OpType.from_short_name(op.short_name) is op

    def test_unknown_short_name(self):
        with pytest.raises(TraceFormatError):
            OpType.from_short_name("X")


class TestTextFormat:
    def test_roundtrip(self):
        for record in _sample_records():
            assert TraceRecord.from_text(record.to_text()) == record

    def test_bad_field_count(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.from_text("R deadbeef 100")

    def test_bad_hex(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.from_text("R zz 100 1")

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        records = _sample_records()
        assert write_text_trace(path, records) == len(records)
        assert list(read_text_trace(path)) == records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("\nR 6c41 5 1\n\n")
        records = list(read_text_trace(path))
        assert len(records) == 1
        assert records[0].key == b"lA"


class TestBinaryFormat:
    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "trace.bin"
        records = _sample_records()
        assert write_trace(path, records) == len(records)
        assert list(read_trace(path)) == records

    def test_roundtrip_via_bytes(self):
        records = _sample_records()
        assert list(records_from_bytes(records_to_bytes(records))) == records

    def test_empty_trace(self):
        assert list(records_from_bytes(records_to_bytes([]))) == []

    def test_bad_magic(self):
        with pytest.raises(TraceFormatError):
            TraceReader(io.BytesIO(b"XXXX\x01"))

    def test_bad_version(self):
        with pytest.raises(TraceFormatError):
            TraceReader(io.BytesIO(b"EKVT\x99"))

    def test_truncated_header(self):
        blob = records_to_bytes(_sample_records())
        with pytest.raises(TraceFormatError):
            list(records_from_bytes(blob[:-3]))

    def test_truncated_key(self):
        blob = records_to_bytes([TraceRecord(OpType.READ, b"abcdef", 1, 1)])
        with pytest.raises(TraceFormatError):
            list(records_from_bytes(blob[:-2]))

    def test_oversized_key_rejected(self):
        writer = TraceWriter(io.BytesIO())
        with pytest.raises(TraceFormatError):
            writer.append(TraceRecord(OpType.READ, b"x" * 70000, 0, 0))

    def test_writer_counts(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        writer.extend(_sample_records())
        assert writer.count == len(_sample_records())


record_strategy = st.builds(
    TraceRecord,
    op=st.sampled_from(list(OpType)),
    key=st.binary(min_size=1, max_size=64),
    value_size=st.integers(min_value=0, max_value=2**32 - 1),
    block=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestProperties:
    @given(st.lists(record_strategy, max_size=50))
    def test_binary_roundtrip(self, records):
        assert list(records_from_bytes(records_to_bytes(records))) == records

    @given(record_strategy)
    def test_text_roundtrip(self, record):
        assert TraceRecord.from_text(record.to_text()) == record
