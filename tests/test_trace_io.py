"""Trace model and I/O tests."""

from __future__ import annotations

import builtins
import io

import pytest
from hypothesis import given, strategies as st

from repro.core.trace import (
    ColumnarTraceReader,
    ColumnarTraceWriter,
    OpType,
    TraceReader,
    TraceRecord,
    TraceWriter,
    read_chunk_at,
    read_text_trace,
    read_trace,
    read_trace_footer,
    records_from_bytes,
    records_to_bytes,
    write_text_trace,
    write_trace,
    write_trace_v2,
)
from repro.errors import TraceFormatError


def _sample_records():
    return [
        TraceRecord(OpType.WRITE, b"lABCDEF", 100, 1),
        TraceRecord(OpType.READ, b"A\x00\x12", 42, 2),
        TraceRecord(OpType.DELETE, b"h" + b"\x01" * 40, 0, 3),
        TraceRecord(OpType.SCAN, b"a", 12345, 4),
        TraceRecord(OpType.UPDATE, b"LastHeader", 32, 5),
    ]


class TestOpType:
    def test_short_names_roundtrip(self):
        for op in OpType:
            assert OpType.from_short_name(op.short_name) is op

    def test_unknown_short_name(self):
        with pytest.raises(TraceFormatError):
            OpType.from_short_name("X")


class TestTextFormat:
    def test_roundtrip(self):
        for record in _sample_records():
            assert TraceRecord.from_text(record.to_text()) == record

    def test_bad_field_count(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.from_text("R deadbeef 100")

    def test_bad_hex(self):
        with pytest.raises(TraceFormatError):
            TraceRecord.from_text("R zz 100 1")

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        records = _sample_records()
        assert write_text_trace(path, records) == len(records)
        assert list(read_text_trace(path)) == records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("\nR 6c41 5 1\n\n")
        records = list(read_text_trace(path))
        assert len(records) == 1
        assert records[0].key == b"lA"


class TestBinaryFormat:
    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "trace.bin"
        records = _sample_records()
        assert write_trace(path, records) == len(records)
        assert list(read_trace(path)) == records

    def test_roundtrip_via_bytes(self):
        records = _sample_records()
        assert list(records_from_bytes(records_to_bytes(records))) == records

    def test_empty_trace(self):
        assert list(records_from_bytes(records_to_bytes([]))) == []

    def test_bad_magic(self):
        with pytest.raises(TraceFormatError):
            TraceReader(io.BytesIO(b"XXXX\x01"))

    def test_bad_version(self):
        with pytest.raises(TraceFormatError):
            TraceReader(io.BytesIO(b"EKVT\x99"))

    def test_truncated_header(self):
        blob = records_to_bytes(_sample_records())
        with pytest.raises(TraceFormatError):
            list(records_from_bytes(blob[:-3]))

    def test_truncated_key(self):
        blob = records_to_bytes([TraceRecord(OpType.READ, b"abcdef", 1, 1)])
        with pytest.raises(TraceFormatError):
            list(records_from_bytes(blob[:-2]))

    def test_oversized_key_rejected(self):
        writer = TraceWriter(io.BytesIO())
        with pytest.raises(TraceFormatError):
            writer.append(TraceRecord(OpType.READ, b"x" * 70000, 0, 0))

    def test_writer_counts(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        writer.extend(_sample_records())
        assert writer.count == len(_sample_records())


def _v2_bytes(records, chunk_size=None):
    buffer = io.BytesIO()
    writer = ColumnarTraceWriter(buffer, chunk_size=chunk_size)
    writer.extend(records)
    writer.finish()
    # _pos is not advanced by the footer write, so it is the footer offset
    return buffer.getvalue(), writer._pos


class TestColumnarFormat:
    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "trace.v2"
        records = _sample_records()
        assert write_trace_v2(path, records) == len(records)
        assert list(read_trace(path)) == records

    def test_roundtrip_multiple_chunks(self, tmp_path):
        path = tmp_path / "trace.v2"
        records = _sample_records() * 7
        write_trace_v2(path, records, chunk_size=3)
        with ColumnarTraceReader.open(path) as reader:
            chunks = list(reader.chunks())
        assert [len(chunk) for chunk in chunks] == [3] * 11 + [2]
        assert [r for chunk in chunks for r in chunk.to_records()] == records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.v2"
        assert write_trace_v2(path, []) == 0
        assert list(read_trace(path)) == []
        footer = read_trace_footer(path)
        assert footer.total_records == 0
        assert footer.num_chunks == 0

    def test_max_length_key(self, tmp_path):
        path = tmp_path / "maxkey.v2"
        records = [TraceRecord(OpType.READ, b"k" * 0xFFFF, 7, 9)]
        write_trace_v2(path, records)
        assert list(read_trace(path)) == records

    def test_oversized_key_rejected(self):
        writer = ColumnarTraceWriter(io.BytesIO())
        with pytest.raises(TraceFormatError):
            writer.append(TraceRecord(OpType.READ, b"x" * 70000, 0, 0))

    def test_v1_through_chunk_reader(self):
        records = _sample_records()
        blob = records_to_bytes(records)
        reader = ColumnarTraceReader(io.BytesIO(blob), chunk_size=2)
        assert reader.version == 1
        chunks = list(reader.chunks())
        assert [len(chunk) for chunk in chunks] == [2, 2, 1]
        assert [r for chunk in chunks for r in chunk.to_records()] == records

    def test_footer_random_access(self, tmp_path):
        path = tmp_path / "trace.v2"
        records = _sample_records() * 4
        write_trace_v2(path, records, chunk_size=5)
        footer = read_trace_footer(path)
        assert footer.total_records == len(records)
        assert sum(count for _, count in footer.chunks) == len(records)
        recovered = []
        for offset, count in footer.chunks:
            chunk = read_chunk_at(path, offset)
            assert len(chunk) == count
            recovered.extend(chunk.to_records())
        assert recovered == records

    def test_footer_on_v1_trace(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_trace(path, _sample_records())
        with pytest.raises(TraceFormatError):
            read_trace_footer(path)

    def test_truncated_chunk(self, tmp_path):
        blob, _ = _v2_bytes(_sample_records())
        path = tmp_path / "short.v2"
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceFormatError):
            list(read_trace(path))

    def test_truncated_footer(self, tmp_path):
        blob, footer_offset = _v2_bytes(_sample_records())
        path = tmp_path / "nofooter.v2"
        path.write_bytes(blob[: footer_offset + 3])
        with pytest.raises(TraceFormatError):
            read_trace_footer(path)
        # the streaming path stops at the footer tag and never reads the
        # (truncated) footer body, so it still yields every record
        assert list(read_trace(path)) == _sample_records()

    def test_bad_trailer_magic(self, tmp_path):
        blob, _ = _v2_bytes(_sample_records())
        path = tmp_path / "badtrailer.v2"
        path.write_bytes(blob[:-4] + b"XXXX")
        with pytest.raises(TraceFormatError):
            read_trace_footer(path)

    def test_bad_section_tag(self):
        blob, _ = _v2_bytes([])
        # corrupt the first section tag (the footer tag, at offset 5)
        corrupted = blob[:5] + b"\x7f" + blob[6:]
        with pytest.raises(TraceFormatError):
            list(ColumnarTraceReader(io.BytesIO(corrupted)).chunks())


class _OpenSpy:
    """Wraps builtins.open, recording every binary stream it hands out."""

    def __init__(self):
        self.streams = []
        self._real_open = builtins.open

    def __call__(self, *args, **kwargs):
        stream = self._real_open(*args, **kwargs)
        self.streams.append(stream)
        return stream

    @property
    def all_closed(self):
        return all(stream.closed for stream in self.streams)


@pytest.fixture()
def open_spy(monkeypatch):
    spy = _OpenSpy()
    monkeypatch.setattr(builtins, "open", spy)
    return spy


class TestHandleLeaks:
    """Constructors that raise must not leak the stream they opened."""

    def test_reader_open_bad_magic(self, tmp_path, open_spy):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"XXXX\x01rest")
        for opener in (TraceReader.open, ColumnarTraceReader.open):
            with pytest.raises(TraceFormatError):
                opener(path)
        assert open_spy.streams and open_spy.all_closed

    def test_reader_open_bad_version(self, tmp_path, open_spy):
        path = tmp_path / "future.bin"
        path.write_bytes(b"EKVT\x63")
        for opener in (TraceReader.open, ColumnarTraceReader.open):
            with pytest.raises(TraceFormatError):
                opener(path)
        assert open_spy.streams and open_spy.all_closed

    def test_writer_open_write_failure(self, tmp_path, monkeypatch):
        # the header write inside the constructor blows up
        class BrokenStream:
            def __init__(self):
                self.closed = False

            def write(self, data):
                raise OSError("disk full")

            def close(self):
                self.closed = True

        streams = []

        def fake_open(*args, **kwargs):
            stream = BrokenStream()
            streams.append(stream)
            return stream

        monkeypatch.setattr(builtins, "open", fake_open)
        for opener in (TraceWriter.open, ColumnarTraceWriter.open):
            with pytest.raises(OSError):
                opener(tmp_path / "out.bin")
        assert len(streams) == 2
        assert all(stream.closed for stream in streams)

    def test_writer_open_bad_chunk_size(self, tmp_path, open_spy):
        with pytest.raises(ValueError):
            ColumnarTraceWriter.open(tmp_path / "out.v2", chunk_size=-1)
        assert open_spy.streams and open_spy.all_closed


record_strategy = st.builds(
    TraceRecord,
    op=st.sampled_from(list(OpType)),
    key=st.binary(min_size=1, max_size=64),
    value_size=st.integers(min_value=0, max_value=2**32 - 1),
    block=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestProperties:
    @given(st.lists(record_strategy, max_size=50))
    def test_binary_roundtrip(self, records):
        assert list(records_from_bytes(records_to_bytes(records))) == records

    @given(record_strategy)
    def test_text_roundtrip(self, record):
        assert TraceRecord.from_text(record.to_text()) == record

    @given(
        st.lists(record_strategy, max_size=60),
        st.integers(min_value=1, max_value=17),
    )
    def test_v2_roundtrip(self, records, chunk_size):
        blob, _ = _v2_bytes(records, chunk_size=chunk_size)
        reader = ColumnarTraceReader(io.BytesIO(blob))
        assert reader.version == 2
        assert list(reader) == records

    @given(st.lists(record_strategy, max_size=40))
    def test_v1_v2_cross_format_equivalence(self, records):
        """Both binary formats decode to the identical record sequence."""
        v1 = list(records_from_bytes(records_to_bytes(records)))
        blob, _ = _v2_bytes(records, chunk_size=7)
        v2 = list(ColumnarTraceReader(io.BytesIO(blob)))
        assert v1 == v2 == records


class TestChunkCorruption:
    """Per-chunk CRC32: flipped bytes in a v2 chunk section must never
    go unnoticed in strict mode, and must cost only the damaged chunk in
    lenient mode."""

    def _trace_file(self, tmp_path, chunk_size=5, copies=6):
        records = _sample_records() * copies
        path = tmp_path / "trace.v2"
        write_trace_v2(path, records, chunk_size=chunk_size)
        return path, records

    def test_every_flipped_byte_in_a_chunk_is_detected(self, tmp_path):
        from repro.core.trace import open_trace_chunks

        path, _ = self._trace_file(tmp_path)
        footer = read_trace_footer(path)
        start = footer.chunks[1][0]
        end = footer.chunks[2][0]
        original = path.read_bytes()
        for position in range(start, end):
            damaged = bytearray(original)
            damaged[position] ^= 0x01
            path.write_bytes(bytes(damaged))
            with pytest.raises(TraceFormatError):
                list(open_trace_chunks(path))

    def test_error_names_the_damaged_chunk(self, tmp_path):
        from repro.core.trace import open_trace_chunks

        path, _ = self._trace_file(tmp_path)
        footer = read_trace_footer(path)
        offset = footer.chunks[3][0]
        damaged = bytearray(path.read_bytes())
        damaged[offset + 12] ^= 0xFF  # inside the payload
        path.write_bytes(bytes(damaged))
        with pytest.raises(TraceFormatError, match=f"chunk at offset {offset}"):
            list(open_trace_chunks(path))

    def test_lenient_loses_only_the_damaged_chunk(self, tmp_path, caplog):
        import logging

        from repro.core.trace import open_trace_chunks

        path, records = self._trace_file(tmp_path)
        footer = read_trace_footer(path)
        offset, chunk_count = footer.chunks[2]
        damaged = bytearray(path.read_bytes())
        damaged[offset + 9] ^= 0x10
        path.write_bytes(bytes(damaged))
        with caplog.at_level(logging.WARNING, logger="repro.trace"):
            survived = [
                record
                for chunk in open_trace_chunks(path, lenient=True)
                for record in chunk.to_records()
            ]
        assert len(survived) == len(records) - chunk_count
        assert any("skipping corrupt" in message for message in caplog.messages)
        # the surviving records are byte-identical to the originals
        expected = records[: 2 * 5] + records[3 * 5 :]
        assert survived == expected

    def test_tag_byte_overwritten_with_footer_tag(self, tmp_path):
        # a purely streaming reader would mistake this for end-of-chunks;
        # the footer-driven strict path must still flag it
        from repro.core.trace import open_trace_chunks

        path, records = self._trace_file(tmp_path)
        footer = read_trace_footer(path)
        offset, chunk_count = footer.chunks[1]
        damaged = bytearray(path.read_bytes())
        damaged[offset] = 0x02
        path.write_bytes(bytes(damaged))
        with pytest.raises(TraceFormatError, match="bad section tag"):
            list(open_trace_chunks(path))
        survived = sum(len(chunk) for chunk in open_trace_chunks(path, lenient=True))
        assert survived == len(records) - chunk_count

    def test_streaming_lenient_skips_crc_mismatch(self, tmp_path):
        # no footer available (raw stream): the streaming reader can
        # still skip a fully-consumed corrupt section and carry on
        path, records = self._trace_file(tmp_path)
        footer = read_trace_footer(path)
        offset, chunk_count = footer.chunks[0]
        damaged = bytearray(path.read_bytes())
        damaged[offset + 20] ^= 0x01
        reader = ColumnarTraceReader(io.BytesIO(bytes(damaged)), lenient=True)
        survived = list(reader)
        assert len(survived) == len(records) - chunk_count

    def test_crc_survives_roundtrip_unchanged(self, tmp_path):
        # sanity: an undamaged file still reads back exactly
        path, records = self._trace_file(tmp_path)
        assert list(read_trace(path)) == records
