"""Crash-consistency harness tests.

Property under test: for every reachable crash point, killing the sync
at a seeded block and resuming must converge to the exact consistency
digest of an uninterrupted run — state root, snapshot content, freezer
and txindex cursors, and per-class key counts.  The sweep is seeded, so
failures reproduce bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.errors import CrashPoint
from repro.faults import (
    CrashTestConfig,
    FaultKind,
    FaultRule,
    run_crash_case,
    run_crash_sweep,
    sweep_points,
)
from repro.faults.harness import compare_digests, reference_digest


def _small_config(**overrides) -> CrashTestConfig:
    defaults = dict(
        blocks=24,
        warmup=8,
        seed=7,
        accounts=120,
        contracts=20,
        txs_per_block=5,
    )
    defaults.update(overrides)
    return CrashTestConfig(**defaults)


class TestReferenceDigest:
    def test_reference_is_deterministic(self):
        config = _small_config()
        a = reference_digest(config)
        b = reference_digest(config)
        assert compare_digests(a, b) == []
        assert a.head_number == config.target_head
        assert a.frozen_until > 0  # the scaled cadences actually freeze
        assert a.class_counts  # per-class counts populated

    def test_snapshot_toggle_changes_digest(self):
        with_snap = reference_digest(_small_config(snapshot=True))
        without = reference_digest(_small_config(snapshot=False))
        assert with_snap.snapshot_digest != "-"
        assert without.snapshot_digest == "-"


class TestCrashSweep:
    @pytest.mark.parametrize("flush_interval", [4, 8])
    @pytest.mark.parametrize("snapshot", [True, False])
    def test_sweep_converges(self, flush_interval, snapshot):
        config = _small_config(
            snapshot=snapshot, trie_flush_interval=flush_interval
        )
        report = run_crash_sweep(config)
        rendered = report.render()
        assert report.total == len(sweep_points(config))
        failed = [case for case in report.cases if not case.ok]
        assert not failed, f"divergent cases:\n{rendered}"
        # every case must actually have crashed — a sweep that never
        # fires its faults is vacuous
        assert report.triggered == report.total, rendered

    def test_sweep_is_seeded(self):
        config = _small_config(snapshot=False)
        points = [CrashPoint.BATCH_COMMIT_TORN]
        a = run_crash_sweep(config, points)
        b = run_crash_sweep(config, points)
        assert [case.label for case in a.cases] == [case.label for case in b.cases]


class TestSnapshotRegenIdempotence:
    def test_regen_survives_repeated_crashes(self):
        """Crash *twice* inside regeneration: the generator marker must
        restart the wipe+walk from scratch each time and still converge."""
        config = _small_config(snapshot=True)
        rules = [
            FaultRule(
                kind=FaultKind.KILL,
                point=CrashPoint.BATCH_COMMIT_AFTER,
                min_block=config.warmup + 10,
            ),
            FaultRule(kind=FaultKind.KILL, point=CrashPoint.SNAPSHOT_REGEN_WALK),
            FaultRule(kind=FaultKind.KILL, point=CrashPoint.SNAPSHOT_REGEN_WALK),
        ]
        result = run_crash_case(
            config, rules, "regen-double-crash", reference_digest(config)
        )
        assert result.crashes == 3  # in-run kill + two regen kills
        assert result.ok, result.divergences

    def test_torn_commit_after_regeneration(self):
        """Kill once (forcing a regeneration), then tear a commit in the
        recovered run — forcing a *second* regeneration over the torn
        leftovers."""
        config = _small_config(snapshot=True)
        rules = [
            FaultRule(
                kind=FaultKind.KILL,
                point=CrashPoint.BATCH_COMMIT_AFTER,
                min_block=config.warmup + 6,
            ),
            FaultRule(
                kind=FaultKind.TORN_COMMIT,
                point=CrashPoint.BATCH_COMMIT_TORN,
                min_block=config.warmup + 7,
                tear_fraction=0.4,
            ),
        ]
        result = run_crash_case(
            config, rules, "torn-after-regen", reference_digest(config)
        )
        assert result.crashes == 2
        assert result.ok, result.divergences
