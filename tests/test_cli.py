"""CLI tests (fast paths: sync + analyze; parser construction)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action
            for action in parser._actions
            if action.dest == "command"
        }
        choices = set(actions["command"].choices)
        assert choices == {
            "findings",
            "tables",
            "sync",
            "beamsync",
            "analyze",
            "cache",
            "export",
            "compare",
            "crashtest",
            "replay",
            "migrate",
            "serve",
            "stats",
            "bench",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sync_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sync"])

    def test_crashtest_defaults(self):
        args = build_parser().parse_args(["crashtest"])
        assert args.blocks == 64
        assert args.seed == 7
        assert args.crash_points == "all"
        assert args.snapshot == "on"

    def test_crashtest_rejects_unknown_point(self, capsys):
        code = main(["crashtest", "--crash-points", "bogus"])
        assert code == 2
        assert "unknown crash point" in capsys.readouterr().err


@pytest.fixture(scope="module")
def synced_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.bin"
    code = main(
        [
            "sync",
            "--mode",
            "bare",
            "--out",
            str(path),
            "--blocks",
            "20",
            "--warmup",
            "8",
            "--accounts",
            "400",
            "--contracts",
            "60",
            "--txs",
            "8",
        ]
    )
    assert code == 0
    return path


class TestSyncAndAnalyze:
    def test_sync_writes_trace(self, synced_trace):
        assert synced_trace.exists()
        assert synced_trace.stat().st_size > 1000

    def test_analyze_prints_table(self, synced_trace, capsys):
        code = main(["analyze", str(synced_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Operation distribution" in out
        assert "TrieNodeAccount" in out

    def test_analyze_with_correlation(self, synced_trace, capsys):
        code = main(["analyze", str(synced_trace), "--correlate", "update"])
        assert code == 0
        out = capsys.readouterr().out
        assert "update correlations" in out
        assert "d=0" in out

    def test_compare_trace_with_itself(self, synced_trace, capsys):
        code = main(["compare", str(synced_trace), str(synced_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "TV distance: 0.000" in out


@pytest.fixture(scope="module")
def metrics_file(synced_trace, tmp_path_factory):
    """A --metrics-out snapshot produced by a real analyze run."""
    path = tmp_path_factory.mktemp("metrics") / "analyze.json"
    code = main(["analyze", str(synced_trace), "--metrics-out", str(path)])
    assert code == 0
    assert path.exists()
    return path


class TestStats:
    def test_stats_prometheus_output(self, metrics_file, capsys):
        code = main(["stats", str(metrics_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_analysis_chunks_total counter" in out
        assert "repro_analysis_records_total" in out

    def test_stats_json_output(self, metrics_file, capsys):
        import json

        code = main(["stats", str(metrics_file), "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-metrics-v1"
        names = {family["name"] for family in payload["families"]}
        assert "repro_analysis_chunks_total" in names

    def test_stats_merges_multiple_files(self, metrics_file, capsys):
        """Merging a snapshot with itself doubles every counter."""
        from repro.obs import read_snapshot_json

        single = read_snapshot_json(metrics_file)
        chunks = single.value("repro_analysis_chunks_total")
        code = main(
            ["stats", str(metrics_file), str(metrics_file), "--format", "json"]
        )
        assert code == 0
        import json

        from repro.obs.registry import snapshot_from_json

        merged = snapshot_from_json(json.loads(capsys.readouterr().out))
        assert merged.value("repro_analysis_chunks_total") == 2 * chunks

    def test_stats_writes_out_file(self, metrics_file, tmp_path, capsys):
        out_path = tmp_path / "merged.prom"
        code = main(["stats", str(metrics_file), "--out", str(out_path)])
        assert code == 0
        assert "# TYPE" in out_path.read_text()

    def test_stats_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "missing.json")])
        assert code == 2
        assert capsys.readouterr().err

    def test_stats_no_files_exits_2(self, capsys):
        code = main(["stats"])
        assert code == 2
        assert "no metrics files" in capsys.readouterr().err

    def test_stats_invalid_payload_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "not-metrics", "families": {}}')
        code = main(["stats", str(bad)])
        assert code == 2
        assert capsys.readouterr().err

    def test_sync_metrics_out_includes_spans(self, tmp_path):
        """End-to-end: sync --metrics-out captures phase spans and
        store counters from the run."""
        from repro.obs import read_snapshot_json

        trace = tmp_path / "t.bin"
        metrics = tmp_path / "m.json"
        code = main(
            [
                "sync",
                "--mode",
                "bare",
                "--out",
                str(trace),
                "--blocks",
                "6",
                "--warmup",
                "2",
                "--accounts",
                "120",
                "--contracts",
                "20",
                "--txs",
                "4",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        snap = read_snapshot_json(metrics)
        assert snap.value("repro_sync_blocks_total") >= 6.0
        spans = snap.families["repro_spans_total"]
        span_index = spans.labelnames.index("span")
        paths = {values[span_index] for values in spans.series}
        assert "import_block" in paths
        assert "import_block/execute" in paths


class TestReplay:
    def test_replay_defaults(self):
        args = build_parser().parse_args(["replay", "t.bin"])
        assert args.backend == "memdb"
        assert args.workers == 1
        assert args.executor == "thread"
        assert args.admission == "block"
        assert args.pace is None

    def test_replay_missing_trace(self, capsys):
        code = main(["replay", "/nonexistent/trace.bin"])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_replay_unknown_backend(self, synced_trace, capsys):
        code = main(["replay", str(synced_trace), "--backend", "rocksdb"])
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_replay_bad_config(self, synced_trace, capsys):
        code = main(["replay", str(synced_trace), "--workers", "0"])
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_replay_serial_run(self, synced_trace, capsys):
        code = main(["replay", str(synced_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "inline executor" in out
        assert "fingerprint" in out

    def test_replay_sharded_with_metrics_out(self, synced_trace, tmp_path, capsys):
        from repro.obs.export import read_snapshot_json

        metrics = tmp_path / "replay.json"
        code = main(
            [
                "replay",
                str(synced_trace),
                "--backend",
                "lsm",
                "--workers",
                "2",
                "--latency-sample",
                "8",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        assert "thread executor, 2 worker(s)" in capsys.readouterr().out
        snap = read_snapshot_json(metrics)
        assert snap.get_value("repro_replay_records_total") > 0
        assert "repro_replay_latency_seconds" in snap.families

    def test_replay_verify_mode(self, synced_trace, capsys):
        code = main(["replay", str(synced_trace), "--workers", "4", "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IDENTICAL" in out

    def test_replay_corrupt_trace(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"this is not a trace file at all")
        code = main(["replay", str(bogus)])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestErrorPaths:
    """Bad input exits 2 with a one-line error — never a traceback.

    Every case is user error (missing file, unusable cache directory,
    nonsense flag values); the CLI's contract is a single diagnostic
    line on stderr and exit code 2, so scripts and CI can distinguish
    "you called it wrong" (2) from "the run found a problem" (1).
    """

    @pytest.fixture()
    def cache_dir_that_is_a_file(self, tmp_path):
        path = tmp_path / "cachefile"
        path.write_text("not a directory", encoding="ascii")
        return path

    @pytest.mark.parametrize(
        ("argv", "needle"),
        [
            (["replay", "{missing}"], "not found"),
            (["analyze", "{missing}"], "not found"),
            (["replay", "{trace}", "--pace", "-5"], "pace"),
            (["replay", "{trace}", "--pace", "0"], "pace"),
            (["replay", "{trace}", "--queue-depth", "0"], "queue_depth"),
            (["replay", "{trace}", "--queue-depth", "-3"], "queue_depth"),
            (["analyze", "{trace}", "--cache-dir", "{badcache}"], "cache"),
            (["cache", "show", "--cache-dir", "{badcache}"], "cache"),
            (["cache", "clear", "--cache-dir", "{badcache}"], "cache"),
            (["serve", "{missing}"], "not found"),
            (["serve", "{trace}", "--workers", "0"], "workers"),
            (["serve", "{trace}", "--aging-seconds", "0"], "aging"),
            (["serve", "x={trace}", "y={missing}"], "not found"),
        ],
        ids=lambda value: " ".join(value) if isinstance(value, list) else value,
    )
    def test_bad_input_exits_2_with_one_line_error(
        self, argv, needle, synced_trace, cache_dir_that_is_a_file, tmp_path, capsys
    ):
        substitutions = {
            "{missing}": str(tmp_path / "missing.bin"),
            "{trace}": str(synced_trace),
            "{badcache}": str(cache_dir_that_is_a_file),
        }

        def substitute(arg: str) -> str:
            for placeholder, value in substitutions.items():
                arg = arg.replace(placeholder, value)
            return arg

        code = main([substitute(arg) for arg in argv])
        err = capsys.readouterr().err
        assert code == 2, err
        assert "Traceback" not in err
        diagnostic = [
            line
            for line in err.splitlines()
            if needle in line and not line.startswith("Reading")
        ]
        assert len(diagnostic) == 1, err
