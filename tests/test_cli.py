"""CLI tests (fast paths: sync + analyze; parser construction)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action
            for action in parser._actions
            if action.dest == "command"
        }
        choices = set(actions["command"].choices)
        assert choices == {
            "findings",
            "tables",
            "sync",
            "analyze",
            "export",
            "compare",
            "crashtest",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sync_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sync"])

    def test_crashtest_defaults(self):
        args = build_parser().parse_args(["crashtest"])
        assert args.blocks == 64
        assert args.seed == 7
        assert args.crash_points == "all"
        assert args.snapshot == "on"

    def test_crashtest_rejects_unknown_point(self, capsys):
        code = main(["crashtest", "--crash-points", "bogus"])
        assert code == 2
        assert "unknown crash point" in capsys.readouterr().err


@pytest.fixture(scope="module")
def synced_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.bin"
    code = main(
        [
            "sync",
            "--mode",
            "bare",
            "--out",
            str(path),
            "--blocks",
            "20",
            "--warmup",
            "8",
            "--accounts",
            "400",
            "--contracts",
            "60",
            "--txs",
            "8",
        ]
    )
    assert code == 0
    return path


class TestSyncAndAnalyze:
    def test_sync_writes_trace(self, synced_trace):
        assert synced_trace.exists()
        assert synced_trace.stat().st_size > 1000

    def test_analyze_prints_table(self, synced_trace, capsys):
        code = main(["analyze", str(synced_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Operation distribution" in out
        assert "TrieNodeAccount" in out

    def test_analyze_with_correlation(self, synced_trace, capsys):
        code = main(["analyze", str(synced_trace), "--correlate", "update"])
        assert code == 0
        out = capsys.readouterr().out
        assert "update correlations" in out
        assert "d=0" in out

    def test_compare_trace_with_itself(self, synced_trace, capsys):
        code = main(["compare", str(synced_trace), str(synced_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "TV distance: 0.000" in out
