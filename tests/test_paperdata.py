"""Paper-data module tests."""

from __future__ import annotations

import pytest

from repro.core.classes import DOMINANT_CLASSES, KVClass
from repro.core.opdist import OpDistAnalyzer, OperationDistribution
from repro.core.paperdata import (
    PAPER_TABLE1_SUMMARY,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4_BARE,
    PAPER_TABLE4_CACHE,
    PaperOpRow,
    mix_distance,
    similarity_report,
    weighted_mean_distance,
)
from repro.core.trace import OpType, TraceRecord


class TestTranscription:
    def test_table2_covers_23_classes(self):
        # The paper's Table II lists 23 classes with operations.
        assert len(PAPER_TABLE2) == 23

    def test_table3_covers_19_classes(self):
        assert len(PAPER_TABLE3) == 19

    def test_snapshot_classes_absent_from_table3(self):
        assert KVClass.SNAPSHOT_ACCOUNT not in PAPER_TABLE3
        assert KVClass.SNAPSHOT_STORAGE not in PAPER_TABLE3

    def test_mixes_sum_to_about_100(self):
        for table in (PAPER_TABLE2, PAPER_TABLE3):
            for kv_class, row in table.items():
                total = row.writes + row.updates + row.reads + row.scans + row.deletes
                assert 99.0 < total < 101.0, (kv_class, total)

    def test_shares_sum_to_about_100(self):
        for table in (PAPER_TABLE2, PAPER_TABLE3):
            assert 99.0 < sum(row.share for row in table.values()) < 101.0

    def test_table4_values(self):
        assert PAPER_TABLE4_BARE[KVClass.TRIE_NODE_ACCOUNT] == 14.7
        assert PAPER_TABLE4_CACHE[KVClass.TRIE_NODE_STORAGE] == 6.59

    def test_table1_summary(self):
        assert PAPER_TABLE1_SUMMARY["num_classes"] == 29
        assert PAPER_TABLE1_SUMMARY["dominant_share_pct"] == 99.2


class TestDistances:
    def test_identical_mix_zero_distance(self):
        row = PAPER_TABLE2[KVClass.TX_LOOKUP]
        measured = OperationDistribution(
            KVClass.TX_LOOKUP, writes=5200, updates=0, reads=0, scans=0, deletes=4800
        )
        assert mix_distance(measured, row) < 0.01

    def test_disjoint_mix_full_distance(self):
        row = PaperOpRow(1.0, 100.0, 0, 0, 0, 0)
        measured = OperationDistribution(KVClass.CODE, reads=10)
        assert mix_distance(measured, row) == pytest.approx(1.0)

    def test_similarity_report_marks_missing_classes(self):
        empty = OpDistAnalyzer(track_keys=False)
        report = similarity_report(empty, PAPER_TABLE2)
        assert all(distance == 1.0 for distance in report.values())

    def test_weighted_mean_emphasizes_big_classes(self):
        report = {kv_class: 0.0 for kv_class in PAPER_TABLE2}
        report[KVClass.TRIE_NODE_STORAGE] = 1.0  # 38.5% share
        report[KVClass.LAST_FAST] = 0.0
        mean = weighted_mean_distance(report, PAPER_TABLE2)
        assert 0.3 < mean < 0.5  # ~38.5% of the weight

    def test_report_on_synthetic_trace(self):
        records = [
            TraceRecord(OpType.WRITE, b"l" + b"\x01" * 32, 4, 1),
            TraceRecord(OpType.DELETE, b"l" + b"\x01" * 32, 0, 1),
        ]
        opdist = OpDistAnalyzer(track_keys=False).consume(records)
        report = similarity_report(opdist, PAPER_TABLE2)
        # 50/50 write/delete vs paper's 52/48: tiny distance.
        assert report[KVClass.TX_LOOKUP] < 0.05


class TestDominantCoverage:
    def test_dominant_classes_in_table2(self):
        for kv_class in DOMINANT_CLASSES:
            assert kv_class in PAPER_TABLE2
