"""Full-sync driver integration tests.

These run small dedicated syncs (separate from the session fixture) to
check mechanics; the fixture-based tests in test_findings.py cover the
statistical shape.
"""

from __future__ import annotations

import pytest

from repro.core.classes import KVClass, classify_key
from repro.core.opdist import OpDistAnalyzer
from repro.core.trace import OpType
from repro.gethdb import schema
from repro.gethdb.database import DBConfig
from repro.sync.driver import FullSyncDriver, SyncConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

TINY = WorkloadConfig(
    seed=77, initial_eoa_accounts=200, initial_contracts=40, txs_per_block=8
)


def small_driver(cache: bool, **sync_kwargs):
    db_config = (
        DBConfig.cache_trace_config(64 * 1024) if cache else DBConfig.bare_trace_config()
    )
    # Scale background cadences down so they all fire within tiny runs.
    sync_kwargs.setdefault("bloom_section_size", 16)
    sync_kwargs.setdefault("bloom_tracked_bits", 8)
    config = SyncConfig(db=db_config, warmup_blocks=10, **sync_kwargs)
    return FullSyncDriver(config, WorkloadGenerator(TINY), name="test")


@pytest.fixture(scope="module")
def cache_run():
    driver = small_driver(cache=True)
    result = driver.run(30)
    return driver, result


@pytest.fixture(scope="module")
def bare_run():
    driver = small_driver(cache=False)
    result = driver.run(30)
    return driver, result


class TestRunMechanics:
    def test_processes_requested_blocks(self, cache_run):
        driver, result = cache_run
        assert result.blocks_processed == 30
        assert result.head_number == 40  # warmup 10 + 30 measured

    def test_warmup_is_untraced(self, cache_run):
        _, result = cache_run
        blocks = {r.block for r in result.records}
        # Blocks 1..9 are warmup-only; the startup burst is stamped with
        # the last warmup height (10), measured blocks are 11..40.
        assert min(b for b in blocks if b > 0) >= 10

    def test_records_nonempty_and_stamped(self, cache_run):
        _, result = cache_run
        assert len(result.records) > 1000
        assert all(r.block <= 40 for r in result.records)

    def test_store_snapshot_matches_store(self, cache_run):
        _, result = cache_run
        assert len(result.store_snapshot) == result.total_store_pairs

    def test_initialize_idempotent(self):
        driver = small_driver(cache=False)
        driver.initialize()
        pairs = len(driver.db.store.inner)
        driver.initialize()
        assert len(driver.db.store.inner) == pairs


class TestTraceContent:
    def test_all_29_classes_present_in_cache_store(self, cache_run):
        _, result = cache_run
        observed = {classify_key(key) for key, _ in result.store_snapshot}
        observed.discard(KVClass.UNKNOWN)
        assert len(observed) == 29

    def test_bare_store_has_no_snapshot_classes(self, bare_run):
        _, result = bare_run
        observed = {classify_key(key) for key, _ in result.store_snapshot}
        assert KVClass.SNAPSHOT_ACCOUNT not in observed
        assert KVClass.SNAPSHOT_STORAGE not in observed

    def test_no_unknown_keys_in_trace(self, cache_run):
        _, result = cache_run
        unknown = [
            r.key for r in result.records if classify_key(r.key) is KVClass.UNKNOWN
        ]
        assert unknown == []

    def test_head_pointers_updated_every_block(self, cache_run):
        _, result = cache_run
        updates = sum(
            1
            for r in result.records
            if r.key == schema.LAST_BLOCK_KEY and r.op is OpType.UPDATE
        )
        assert updates == 30

    def test_head_pointer_updates_adjacent(self, cache_run):
        _, result = cache_run
        mutations = [
            r for r in result.records if r.op in (OpType.WRITE, OpType.UPDATE)
        ]
        for index, record in enumerate(mutations):
            if record.key == schema.LAST_HEADER_KEY:
                assert mutations[index + 1].key == schema.LAST_FAST_KEY
                assert mutations[index + 2].key == schema.LAST_BLOCK_KEY

    def test_txlookup_writes_match_tx_count(self, cache_run):
        _, result = cache_run
        writes = sum(
            1
            for r in result.records
            if classify_key(r.key) is KVClass.TX_LOOKUP and r.op is OpType.WRITE
        )
        assert writes > 30  # at least one tx per block

    def test_txlookup_never_read(self, cache_run):
        _, result = cache_run
        reads = [
            r
            for r in result.records
            if classify_key(r.key) is KVClass.TX_LOOKUP and r.op is OpType.READ
        ]
        assert reads == []

    def test_freezer_produced_deletes(self, cache_run):
        driver, result = cache_run
        # threshold 64 > 40 head: nothing frozen in this tiny run
        assert driver.freezer.frozen_blocks == 0

    def test_cache_reduces_trace_volume(self, cache_run, bare_run):
        _, cache_result = cache_run
        _, bare_result = bare_run
        analyzer_cache = OpDistAnalyzer(track_keys=False).consume(cache_result.records)
        analyzer_bare = OpDistAnalyzer(track_keys=False).consume(bare_result.records)
        trie = (KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE)
        assert analyzer_cache.reads_in(trie) < analyzer_bare.reads_in(trie)

    def test_snapshot_inflates_pair_count(self, cache_run, bare_run):
        _, cache_result = cache_run
        _, bare_result = bare_run
        assert cache_result.total_store_pairs > bare_result.total_store_pairs


class TestBackgroundProcesses:
    def test_freezer_runs_with_low_threshold(self):
        driver = small_driver(cache=False, freezer_threshold=8, freezer_batch=4)
        result = driver.run(30)
        assert driver.freezer.frozen_blocks > 0
        deletes = [
            r
            for r in result.records
            if classify_key(r.key) is KVClass.BLOCK_HEADER and r.op is OpType.DELETE
        ]
        assert deletes

    def test_unindexing_runs(self):
        driver = small_driver(cache=False, txlookup_limit=5)
        result = driver.run(30)
        deletes = [
            r
            for r in result.records
            if classify_key(r.key) is KVClass.TX_LOOKUP and r.op is OpType.DELETE
        ]
        assert deletes
        assert driver.txindexer.tail > 0

    def test_bloombits_sections_complete(self):
        driver = small_driver(cache=False, bloom_section_size=8, bloom_tracked_bits=4)
        result = driver.run(30)
        assert driver.bloombits.sections_done >= 4
        bloom_writes = [
            r
            for r in result.records
            if classify_key(r.key) is KVClass.BLOOM_BITS
        ]
        assert bloom_writes

    def test_stateid_retention_window(self):
        driver = small_driver(cache=False, stateid_retention=4)
        result = driver.run(30)
        writes = sum(
            1
            for r in result.records
            if classify_key(r.key) is KVClass.STATE_ID and r.op is OpType.WRITE
        )
        deletes = sum(
            1
            for r in result.records
            if classify_key(r.key) is KVClass.STATE_ID and r.op is OpType.DELETE
        )
        assert writes == 30
        assert deletes == 30  # window already full after warmup


class TestShutdown:
    def test_journals_written(self, cache_run):
        driver, _ = cache_run
        assert driver.db.has(schema.TRIE_JOURNAL_KEY)
        assert driver.db.has(schema.SNAPSHOT_JOURNAL_KEY)

    def test_bare_shutdown_skips_snapshot_journal(self, bare_run):
        driver, _ = bare_run
        assert driver.db.has(schema.TRIE_JOURNAL_KEY)
        assert not driver.db.has(schema.SNAPSHOT_JOURNAL_KEY)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        result1 = small_driver(cache=False).run(10)
        result2 = small_driver(cache=False).run(10)
        assert result1.records == result2.records
