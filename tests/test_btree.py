"""B+-tree store tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyNotFoundError
from repro.kvstore.btree import BPlusTreeStore


class TestBasics:
    def test_roundtrip(self):
        store = BPlusTreeStore(order=4)
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert store.has(b"k")
        assert len(store) == 1

    def test_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            BPlusTreeStore().get(b"nope")

    def test_overwrite_in_place(self):
        store = BPlusTreeStore(order=4)
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTreeStore(order=2)


class TestStructure:
    def test_splits_grow_height(self):
        store = BPlusTreeStore(order=4)
        assert store.height == 1
        for i in range(100):
            store.put(b"key%03d" % i, b"v")
        assert store.height >= 3
        for i in range(100):
            assert store.get(b"key%03d" % i) == b"v"

    def test_random_insert_order(self):
        store = BPlusTreeStore(order=4)
        keys = [b"key%03d" % i for i in range(200)]
        rng = random.Random(8)
        shuffled = keys[:]
        rng.shuffle(shuffled)
        for key in shuffled:
            store.put(key, key[::-1])
        assert [k for k, _ in store.scan(b"")] == sorted(keys)

    def test_no_tombstones_ever(self):
        store = BPlusTreeStore(order=4)
        for i in range(50):
            store.put(b"key%02d" % i, b"v")
        for i in range(50):
            store.delete(b"key%02d" % i)
        assert store.metrics.tombstones_written == 0
        assert len(store) == 0

    def test_delete_absent_is_noop(self):
        store = BPlusTreeStore(order=4)
        store.delete(b"ghost")
        assert len(store) == 0

    def test_read_cost_is_tree_height(self):
        store = BPlusTreeStore(order=4)
        for i in range(200):
            store.put(b"key%03d" % i, b"v")
        store.metrics.sstable_lookups = 0
        store.metrics.user_gets = 0
        store.get(b"key050")
        assert store.metrics.sstable_lookups == store.height


class TestScans:
    def _store(self, n=100, order=4):
        store = BPlusTreeStore(order=order)
        for i in range(n):
            store.put(b"k%03d" % i, b"v%d" % i)
        return store

    def test_full_scan_sorted(self):
        store = self._store()
        keys = [k for k, _ in store.scan(b"")]
        assert keys == sorted(keys)
        assert len(keys) == 100

    def test_range_scan(self):
        store = self._store()
        got = [k for k, _ in store.scan(b"k010", b"k020")]
        assert got == [b"k%03d" % i for i in range(10, 20)]

    def test_scan_after_deletes(self):
        store = self._store()
        for i in range(0, 100, 2):
            store.delete(b"k%03d" % i)
        got = [k for k, _ in store.scan(b"")]
        assert got == [b"k%03d" % i for i in range(1, 100, 2)]

    def test_scan_from_middle_of_leaf(self):
        store = self._store()
        got = [k for k, _ in store.scan(b"k0505")]  # between keys
        assert got[0] == b"k051"


class TestDictEquivalence:
    def test_randomized(self):
        rng = random.Random(77)
        store = BPlusTreeStore(order=6)
        model = {}
        for step in range(4000):
            key = b"key%03d" % rng.randrange(300)
            action = rng.random()
            if action < 0.55:
                value = b"val%d" % step
                store.put(key, value)
                model[key] = value
            elif action < 0.85:
                store.delete(key)
                model.pop(key, None)
            else:
                assert store.get_or_none(key) == model.get(key)
        assert dict(store.scan(b"")) == model
        assert len(store) == len(model)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=40),
                st.binary(min_size=1, max_size=12),
            ),
            max_size=200,
        ),
        st.sampled_from([4, 6, 16]),
    )
    def test_property(self, ops, order):
        store = BPlusTreeStore(order=order)
        model = {}
        for is_put, key_index, value in ops:
            key = b"key%02d" % key_index
            if is_put:
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        assert dict(store.scan(b"")) == model
        assert len(store) == len(model)


class TestCostProfile:
    def test_no_compaction_channel(self):
        store = BPlusTreeStore(order=8)
        for i in range(500):
            store.put(b"key%04d" % i, b"v" * 30)
        assert store.metrics.compactions == 0
        assert store.metrics.compaction_bytes_written == 0
        assert store.metrics.flush_bytes_written > 0  # page writes instead
