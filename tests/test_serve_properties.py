"""Randomized schedule properties for the trace service.

Seeded random schedules of N tenants × M jobs (mixed priorities,
durations, and mid-flight cancellations) run against the in-process
daemon on a virtual clock.  The invariants, independent of the drawn
schedule:

* **total accounting** — every submission is answered: accepted or
  explicitly rejected, and every accepted job reaches exactly one
  terminal response (result / error / cancelled);
* **metrics = reality** — the per-tenant counters merged out of the
  registry equal a serial reference count over the client-observed
  outcomes (the registry is the ground truth ``repro stats`` serves);
* **no leaks** — after shutdown (drain or cancel, with cancellations
  racing in), zero server-side asyncio tasks remain pending.

Runs are deterministic per seed: time only moves when the test pumps
the virtual clock, so the admission and scheduling decisions are a
pure function of the drawn schedule.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.obs.registry import MetricsRegistry
from repro.serve import ServeClient, TenantQuota

from tests.serve_utils import (
    VirtualClock,
    assert_no_server_tasks,
    counter_value,
    make_trace,
    pump,
    run,
    serve_session,
)

TERMINALS = ("result", "error", "cancelled", "rejected")


def _draw_schedule(rng, tenants, jobs_per_tenant):
    """A deterministic random schedule: per-tenant job specs."""
    schedule = []
    for tenant in tenants:
        for index in range(jobs_per_tenant):
            schedule.append(
                {
                    "tenant": tenant,
                    "kind": "sleep",
                    "params": {"seconds": round(rng.uniform(0.0, 2.0), 3)},
                    "priority": rng.randrange(0, 4),
                    "cancel": rng.random() < 0.2,
                }
            )
    rng.shuffle(schedule)
    return schedule


async def _run_schedule(schedule, port, clock, *, cancel_pumps=30):
    """Submit everything, randomly cancel, pump to completion.

    Returns ``(handles, clients)`` with every handle terminal.
    """
    clients = {}
    handles = []
    for spec in schedule:
        tenant = spec["tenant"]
        if tenant not in clients:
            clients[tenant] = await ServeClient("127.0.0.1", port, tenant).connect()
        handle = await clients[tenant].submit(
            spec["kind"], spec["params"], priority=spec["priority"]
        )
        handles.append((spec, handle))
    # let admission verdicts land, then fire the scheduled cancellations
    await pump(clock, step=0.0, rounds=cancel_pumps)
    for spec, handle in handles:
        if spec["cancel"] and handle.terminal is None:
            await clients[spec["tenant"]].cancel(handle.id)
    done = lambda: all(h.done.is_set() for _, h in handles)
    finished = await pump(clock, step=0.25, rounds=2000, until=done)
    assert finished, [
        (h.id, h.status) for _, h in handles if not h.done.is_set()
    ]
    return handles, clients


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_every_job_terminates_and_counters_match_reference(seed):
    """N tenants × M jobs: total accounting + metrics == serial reference."""
    rng = random.Random(seed)
    tenants = [f"tenant{i}" for i in range(3)]
    schedule = _draw_schedule(rng, tenants, jobs_per_tenant=6)
    clock = VirtualClock()
    registry = MetricsRegistry()

    async def body():
        async with serve_session(
            {},  # sleep jobs touch no trace
            registry=registry,
            clock=clock,
            sleep=clock.sleep,
            workers=2,
            quota=TenantQuota(max_pending=4, max_running=1, admission="drop"),
        ) as (server, port):
            handles, clients = await _run_schedule(schedule, port, clock)
            try:
                # --- total accounting -------------------------------------
                for spec, handle in handles:
                    assert handle.status in TERMINALS, (spec, handle.status)
                    if handle.accepted:
                        assert handle.status in ("result", "error", "cancelled")
                    else:
                        assert handle.status == "rejected"

                # --- serial reference: count client-observed outcomes ----
                reference = {
                    tenant: {"submitted": 0, "result": 0, "cancelled": 0, "rejected": 0}
                    for tenant in tenants
                }
                for spec, handle in handles:
                    bucket = reference[spec["tenant"]]
                    if handle.accepted:
                        bucket["submitted"] += 1
                    if handle.status in ("result", "cancelled", "rejected"):
                        bucket[handle.status] += 1

                for tenant, expect in reference.items():
                    assert counter_value(
                        registry,
                        "repro_serve_jobs_submitted_total",
                        tenant=tenant,
                        kind="sleep",
                    ) == expect["submitted"]
                    assert counter_value(
                        registry,
                        "repro_serve_jobs_completed_total",
                        tenant=tenant,
                        kind="sleep",
                    ) == expect["result"]
                    assert counter_value(
                        registry,
                        "repro_serve_jobs_cancelled_total",
                        tenant=tenant,
                        kind="sleep",
                    ) == expect["cancelled"]
                    assert counter_value(
                        registry,
                        "repro_serve_jobs_rejected_total",
                        tenant=tenant,
                        reason="quota",
                    ) == expect["rejected"]
                    # conservation: every admitted job reached one terminal
                    assert expect["submitted"] == (
                        expect["result"]
                        + expect["cancelled"]
                        + (
                            sum(
                                1
                                for s, h in handles
                                if s["tenant"] == tenant and h.status == "error"
                            )
                        )
                    )
            finally:
                for client in clients.values():
                    await client.close()

    run(body())
    assert_no_pending_metrics_gauges(registry)


def assert_no_pending_metrics_gauges(registry):
    """After shutdown the queue/running gauges must read zero."""
    assert counter_value(registry, "repro_serve_queue_depth") == 0.0
    assert counter_value(registry, "repro_serve_jobs_running") == 0.0


@pytest.mark.parametrize("seed", [3, 11])
def test_shutdown_cancel_under_load_leaks_nothing(seed):
    """Kill the server mid-schedule: every in-flight job still gets a
    terminal answer (or dies with its connection) and no task leaks."""
    rng = random.Random(seed)
    tenants = [f"tenant{i}" for i in range(4)]
    schedule = _draw_schedule(rng, tenants, jobs_per_tenant=4)
    for spec in schedule:
        spec["params"]["seconds"] = round(rng.uniform(5.0, 30.0), 2)  # long jobs
    clock = VirtualClock()
    registry = MetricsRegistry()

    async def body():
        async with serve_session(
            {},
            registry=registry,
            clock=clock,
            sleep=clock.sleep,
            workers=3,
            quota=TenantQuota(max_pending=8, max_running=2, admission="drop"),
        ) as (server, port):
            clients = {}
            handles = []
            for spec in schedule:
                tenant = spec["tenant"]
                if tenant not in clients:
                    clients[tenant] = await ServeClient(
                        "127.0.0.1", port, tenant
                    ).connect()
                handles.append(
                    await clients[tenant].submit(
                        spec["kind"], spec["params"], priority=spec["priority"]
                    )
                )
            # some admitted and running, some queued, none finished
            await pump(clock, step=0.0, rounds=30)
            await server.shutdown("cancel")
            for handle in handles:
                await asyncio.wait_for(handle.wait(), timeout=10)
                assert handle.status in ("cancelled", "error", "rejected")
            for client in clients.values():
                await client.close()
            assert_no_server_tasks(server)

    run(body())
    assert_no_pending_metrics_gauges(registry)


@pytest.mark.slow
def test_streamed_analysis_matches_serial_reference_under_concurrency(tmp_path):
    """Many concurrent streamed analyses of one shared trace all equal
    the serial single-reader reference, byte for byte."""
    from repro.core.aggcache import analyze_trace_maybe_cached
    from repro.core.report import render_op_table

    trace = tmp_path / "trace.bin"
    make_trace(trace, n=4000, seed=29, chunk_size=211)
    reference = render_op_table(
        analyze_trace_maybe_cached(
            str(trace), cache=None, workers=1, analyzers=("opdist",)
        )["opdist"],
        "Operation distribution (shared)",
    )

    async def body():
        async with serve_session(
            {"shared": trace},
            workers=3,
            cache_dir=tmp_path / "cache",
            quota=TenantQuota(max_pending=16, max_running=3),
        ) as (server, port):
            clients = [
                await ServeClient("127.0.0.1", port, f"tenant{i % 3}").connect()
                for i in range(6)
            ]
            try:
                handles = [
                    await c.submit(
                        "analyze",
                        {"trace": "shared", "batch_chunks": 1 + i % 4},
                        priority=i % 3,
                    )
                    for i, c in enumerate(clients)
                ]
                await asyncio.gather(*(h.wait() for h in handles))
                for handle in handles:
                    assert handle.status == "result"
                    assert handle.result["table"] == reference
            finally:
                for client in clients:
                    await client.close()

    run(body())
