"""TraceAnalysis bundle tests."""

from __future__ import annotations

from repro.core.analysis import TraceAnalysis
from repro.core.classes import KVClass
from repro.core.trace import OpType, TraceRecord


def _records():
    return [
        TraceRecord(OpType.WRITE, b"A\x01", 100, 1),
        TraceRecord(OpType.READ, b"A\x01", 100, 1),
        TraceRecord(OpType.READ, b"A\x02", 100, 1),
        TraceRecord(OpType.UPDATE, b"A\x01", 100, 2),
        TraceRecord(OpType.READ, b"A\x01", 100, 2),
    ]


def _snapshot():
    # Store holds 10 TrieNodeAccount pairs; trace only touches 2.
    return [(b"A" + bytes([i]), b"node") for i in range(10)]


class TestTraceAnalysis:
    def test_opdist_populated(self):
        analysis = TraceAnalysis("t", _records(), _snapshot())
        assert analysis.opdist.total_ops == 5
        assert analysis.num_records == 5

    def test_sizes_from_snapshot(self):
        analysis = TraceAnalysis("t", _records(), _snapshot())
        assert analysis.sizes.stats_for(KVClass.TRIE_NODE_ACCOUNT).num_pairs == 10

    def test_sizes_empty_without_snapshot(self):
        analysis = TraceAnalysis("t", _records())
        assert analysis.sizes.total_pairs == 0

    def test_read_ratio_uses_store_population(self):
        analysis = TraceAnalysis("t", _records(), _snapshot())
        # 2 of 10 stored pairs were read -> 20%, not 100% of trace keys.
        assert analysis.read_ratio(KVClass.TRIE_NODE_ACCOUNT) == 20.0

    def test_read_ratio_falls_back_to_keys_seen(self):
        analysis = TraceAnalysis("t", _records())
        assert analysis.read_ratio(KVClass.TRIE_NODE_ACCOUNT) == 100.0

    def test_read_ratio_unseen_class(self):
        analysis = TraceAnalysis("t", _records(), _snapshot())
        assert analysis.read_ratio(KVClass.CODE) == 0.0

    def test_correlation_cached(self):
        analysis = TraceAnalysis("t", _records(), correlation_distances=(0, 1))
        first = analysis.correlation(OpType.READ)
        second = analysis.correlation(OpType.READ)
        assert first is second

    def test_correlation_analyzer_access(self):
        analysis = TraceAnalysis("t", _records(), correlation_distances=(0,))
        analyzer = analysis.correlation_analyzer(OpType.READ)
        assert analyzer.num_ops == 3

    def test_separate_ops_separate_results(self):
        analysis = TraceAnalysis("t", _records(), correlation_distances=(0,))
        reads = analysis.correlation(OpType.READ)
        updates = analysis.correlation(OpType.UPDATE)
        assert reads is not updates
