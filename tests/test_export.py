"""CSV/JSON exporter tests."""

from __future__ import annotations

import csv
import json

from repro.core.correlation import CorrelationAnalyzer, CorrelationConfig
from repro.core.export import (
    correlation_to_csv,
    findings_from_json,
    findings_to_json,
    opdist_to_csv,
    sizes_to_csv,
)
from repro.core.findings import Finding, FindingsReport
from repro.core.opdist import OpDistAnalyzer
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType, TraceRecord


def _read_csv(path):
    with open(path, newline="") as stream:
        return list(csv.DictReader(stream))


class TestSizesCsv:
    def test_rows_and_fields(self, tmp_path):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"A\x01", 98)
        analyzer.add_pair(b"c" + b"\x01" * 32, 7000)
        path = tmp_path / "sizes.csv"
        sizes_to_csv(analyzer, path)
        rows = _read_csv(path)
        assert {row["class"] for row in rows} == {"TrieNodeAccount", "Code"}
        code_row = next(r for r in rows if r["class"] == "Code")
        assert float(code_row["value_size_mean"]) == 7000.0
        assert int(code_row["kv_size_max"]) == 7033


class TestOpdistCsv:
    def test_counts_and_percentages(self, tmp_path):
        records = [
            TraceRecord(OpType.WRITE, b"l" + b"\x01" * 32, 4, 1),
            TraceRecord(OpType.DELETE, b"l" + b"\x01" * 32, 0, 2),
        ]
        path = tmp_path / "ops.csv"
        opdist_to_csv(OpDistAnalyzer().consume(records), path)
        rows = _read_csv(path)
        assert len(rows) == 1
        row = rows[0]
        assert row["class"] == "TxLookup"
        assert int(row["writes"]) == 1 and int(row["deletes"]) == 1
        assert float(row["write_pct"]) == 50.0


class TestCorrelationCsv:
    def test_rows_per_distance_and_pair(self, tmp_path):
        records = [
            TraceRecord(OpType.READ, b"A\x01", 1, 0),
            TraceRecord(OpType.READ, b"A\x02", 1, 0),
        ] * 3
        analyzer = CorrelationAnalyzer(CorrelationConfig(distances=(0, 1)))
        analyzer.consume(records)
        path = tmp_path / "corr.csv"
        correlation_to_csv(analyzer.compute(), path)
        rows = _read_csv(path)
        assert rows
        for row in rows:
            assert row["distance"] in ("0", "1")
            assert int(row["count"]) >= 2


class TestFindingsJson:
    def test_roundtrip(self, tmp_path):
        report = FindingsReport(
            [
                Finding(
                    number=1,
                    title="Test finding",
                    passed=True,
                    metrics={"x": 1.5},
                    paper_values={"x": 2.0},
                    notes="note",
                )
            ]
        )
        path = tmp_path / "findings.json"
        findings_to_json(report, path)
        loaded = findings_from_json(path)
        assert loaded[0]["number"] == 1
        assert loaded[0]["passed"] is True
        assert loaded[0]["metrics"]["x"] == 1.5

    def test_json_is_valid(self, tmp_path):
        report = FindingsReport([Finding(number=2, title="t", passed=False)])
        path = tmp_path / "f.json"
        findings_to_json(report, path)
        with open(path) as stream:
            payload = json.load(stream)
        assert payload[0]["passed"] is False
