"""Beam-sync end-to-end tests.

The load-bearing property: a beam node that starts at a pivot with an
*empty* state store and heals missing state on demand from peers must
finish with a state root byte-identical to a full-sync node that
executed the same chain — across healthy, slow, and failure-injecting
peer configurations, deterministically per seed.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import TraceAnalysis
from repro.core.compare import compare_traces
from repro.core.trace import write_trace_v2
from repro.errors import BeamSyncError
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.gethdb.database import DBConfig
from repro.peers import SchedulerConfig, build_peer_network
from repro.sync.beamsync import BeamSyncConfig, BeamSyncDriver
from repro.sync.driver import FullSyncDriver, SyncConfig
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

WORKLOAD = WorkloadConfig(
    seed=55, initial_eoa_accounts=300, initial_contracts=50, txs_per_block=8
)
PIVOT = 12
BEAM_BLOCKS = 8


def _full_node(warmup: int, measured: int, name: str) -> FullSyncDriver:
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=warmup),
        WorkloadGenerator(WORKLOAD),
        name=name,
    )
    driver.run(measured)
    return driver


@pytest.fixture(scope="module")
def peer_node():
    """A full node synced to the pivot, acting as the serving side."""
    return _full_node(PIVOT, 0, "beam-peer")


@pytest.fixture(scope="module")
def full_reference():
    """A full-sync node over the same chain, past the beam window."""
    driver = FullSyncDriver(
        SyncConfig(db=DBConfig.bare_trace_config(), warmup_blocks=PIVOT),
        WorkloadGenerator(WORKLOAD),
        name="full-ref",
    )
    result = driver.run(BEAM_BLOCKS)
    root = driver.state._account_trie.root_hash()  # noqa: SLF001
    return root, result


def _beam(peer_node, profiles, *, seed=7, fault_plan=None, prefetch=True):
    peers = build_peer_network(peer_node, profiles, seed=seed)
    driver = BeamSyncDriver(
        workload_config=WORKLOAD,
        beam_config=BeamSyncConfig(
            scheduler=SchedulerConfig(max_attempts=12), prefetch=prefetch
        ),
        fault_plan=fault_plan,
    )
    return driver.sync_from(peers, beam_blocks=BEAM_BLOCKS)


class TestRootEquality:
    @pytest.mark.parametrize(
        "profiles",
        [
            ["healthy", "healthy", "healthy"],
            ["healthy", "slow", "healthy"],
            ["healthy", "healthy", "dropping"],
        ],
        ids=["healthy", "slow-peer", "peer-drop"],
    )
    def test_beam_root_matches_full_sync(self, peer_node, full_reference, profiles):
        full_root, _ = full_reference
        result = _beam(peer_node, profiles)
        assert result.state_root == full_root
        assert result.blocks_processed == BEAM_BLOCKS
        assert result.pivot_number == PIVOT
        assert result.nodes_fetched > 0

    def test_degraded_network_retries_and_demotes(self, peer_node, full_reference):
        full_root, _ = full_reference
        result = _beam(peer_node, ["healthy", "slow", "dropping"])
        assert result.state_root == full_root
        assert result.retries > 0
        assert result.demotions > 0

    def test_fault_plan_drop_burst_converges(self, peer_node, full_reference):
        full_root, _ = full_reference
        plan = FaultPlan(
            [FaultRule(FaultKind.PEER_DROP, peer="*", at_count=5, repeat=6)],
            seed=1,
        )
        result = _beam(peer_node, ["healthy", "healthy"], fault_plan=plan)
        assert result.state_root == full_root
        assert result.retries >= 6
        assert len(plan.events) == 6


class TestDeterminism:
    def test_same_seed_same_root_and_trace(self, peer_node):
        a = _beam(peer_node, ["healthy", "slow", "dropping"])
        b = _beam(peer_node, ["healthy", "slow", "dropping"])
        assert a.state_root == b.state_root
        assert a.simulated_seconds == b.simulated_seconds
        assert [(r.op, r.key, r.value_size) for r in a.records] == [
            (r.op, r.key, r.value_size) for r in b.records
        ]

    def test_different_peer_seed_same_root(self, peer_node, full_reference):
        full_root, _ = full_reference
        result = _beam(peer_node, ["healthy", "dropping"], seed=99)
        assert result.state_root == full_root


class TestPauseSemantics:
    def test_prefetch_hides_most_pauses(self, peer_node):
        with_prefetch = _beam(peer_node, ["healthy"])
        without = _beam(peer_node, ["healthy"], prefetch=False)
        # Same state gets healed either way; prefetch moves the fetches
        # off the execution path so far fewer reads pause.
        assert with_prefetch.state_root == without.state_root
        assert without.pauses > 0
        assert with_prefetch.pauses < without.pauses / 10

    def test_healed_nodes_cover_all_tries(self, peer_node):
        result = _beam(peer_node, ["healthy"])
        assert result.healed_account_nodes > 0
        assert result.healed_storage_nodes > 0
        assert result.healed_codes > 0


class TestTraceIntegration:
    def test_beam_trace_flows_through_analysis(self, tmp_path, peer_node):
        result = _beam(peer_node, ["healthy", "healthy"])
        path = tmp_path / "beam.bin"
        count = write_trace_v2(path, result.records)
        assert count == len(result.records)
        analysis = TraceAnalysis("beam", path)
        assert analysis.opdist.total_ops == count

    def test_beam_trace_replays(self, tmp_path, peer_node):
        from repro.obs import MetricsRegistry
        from repro.replay import ReplayConfig, replay_trace

        result = _beam(peer_node, ["healthy"])
        path = tmp_path / "beam.bin"
        write_trace_v2(path, result.records)
        report = replay_trace(
            path, ReplayConfig(backend="memdb"), registry=MetricsRegistry()
        )
        assert report.applied == len(result.records)

    def test_compare_report_renders(self, peer_node, full_reference):
        _, full_result = full_reference
        result = _beam(peer_node, ["healthy", "slow"])
        report = compare_traces(
            result.records, full_result.records, "BeamSync", "FullSync"
        )
        text = report.render()
        assert "Trace comparison: BeamSync" in text
        assert "FullSync" in text


class TestCLI:
    def test_beamsync_verb_with_compare_full(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "beam.bin"
        code = main(
            [
                "beamsync",
                "--blocks", "2", "--warmup", "6",
                "--accounts", "120", "--contracts", "20",
                "--txs", "4", "--seed", "55",
                "--profiles", "healthy,dropping",
                "--compare-full",
                "--out", str(out),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert out.exists()
        assert "state roots MATCH" in captured
        assert "Trace comparison: BeamSync" in captured
        assert "read correlations" in captured

    def test_beamsync_verb_rejects_unknown_profile(self, capsys):
        from repro.cli import main

        assert main(["beamsync", "--profiles", "warp"]) == 2
        assert "unknown peer profiles" in capsys.readouterr().err


class TestConfigGuards:
    def test_rejects_caching_config(self):
        with pytest.raises(BeamSyncError, match="bare"):
            BeamSyncDriver(
                sync_config=SyncConfig(db=DBConfig.cache_trace_config(64 * 1024)),
                workload_config=WORKLOAD,
            )

    def test_rejects_mixed_reference_nodes(self, peer_node):
        other = _full_node(PIVOT, 0, "other-peer")
        peers = build_peer_network(peer_node, ["healthy"], seed=7)
        peers += build_peer_network(other, ["healthy"], seed=8)
        peers[1].peer_id = "peer-1-other"
        driver = BeamSyncDriver(workload_config=WORKLOAD)
        with pytest.raises(BeamSyncError, match="reference node"):
            driver.sync_from(peers, beam_blocks=1)
