"""Size analyzer tests (Table I, Figure 2)."""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.core.classes import DOMINANT_CLASSES, KVClass
from repro.core.sizes import RunningStats, SizeAnalyzer


class TestRunningStats:
    def test_single_value(self):
        stats = RunningStats()
        stats.add(10)
        assert stats.mean == 10 and stats.count == 1
        assert stats.ci95_half_width == 0.0

    def test_mean_and_stddev(self):
        stats = RunningStats()
        for value in (2, 4, 4, 4, 5, 5, 7, 9):
            stats.add(value)
        assert stats.mean == 5.0
        assert math.isclose(stats.variance, 32 / 7, rel_tol=1e-9)

    def test_min_max(self):
        stats = RunningStats()
        for value in (5, 1, 9):
            stats.add(value)
        assert stats.minimum == 1 and stats.maximum == 9

    def test_format_constant(self):
        stats = RunningStats()
        stats.add(33)
        stats.add(33)
        assert stats.format_mean_ci() == "33"

    def test_format_with_ci(self):
        stats = RunningStats()
        stats.add(10)
        stats.add(20)
        rendered = stats.format_mean_ci()
        assert rendered.startswith("15.0±")

    def test_format_empty(self):
        assert RunningStats().format_mean_ci() == "-"

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=60))
    def test_welford_matches_naive(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert math.isclose(stats.mean, mean, rel_tol=1e-9)
        assert math.isclose(stats.variance, variance, rel_tol=1e-6, abs_tol=1e-6)


class TestSizeAnalyzer:
    def test_classifies_and_counts(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"l" + b"\x01" * 32, 4)
        analyzer.add_pair(b"l" + b"\x02" * 32, 4)
        analyzer.add_pair(b"LastHeader", 32)
        stats = analyzer.stats_for(KVClass.TX_LOOKUP)
        assert stats.num_pairs == 2
        assert stats.key_size.mean == 33
        assert stats.value_size.mean == 4
        assert analyzer.total_pairs == 3

    def test_percentage(self):
        analyzer = SizeAnalyzer()
        for i in range(9):
            analyzer.add_pair(b"l" + bytes([i]) * 32, 4)
        analyzer.add_pair(b"LastFast", 32)
        assert analyzer.percentage(KVClass.TX_LOOKUP) == 90.0

    def test_store_snapshot_ingestion(self):
        analyzer = SizeAnalyzer()
        analyzer.add_store_snapshot([(b"c" + b"\x01" * 32, b"code" * 100)])
        assert analyzer.stats_for(KVClass.CODE).value_size.mean == 400

    def test_dominant_share(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"A\x01", 100)  # TrieNodeAccount (dominant)
        analyzer.add_pair(b"LastFast", 32)  # singleton
        assert analyzer.dominant_share() == 50.0

    def test_singleton_classes(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"LastFast", 32)
        analyzer.add_pair(b"A\x01", 100)
        analyzer.add_pair(b"A\x02", 100)
        singles = analyzer.singleton_classes()
        assert KVClass.LAST_FAST in singles
        assert KVClass.TRIE_NODE_ACCOUNT not in singles

    def test_mean_kv_size_weighted(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"A\x01", 98)  # total 100
        analyzer.add_pair(b"l" + b"\x01" * 32, 67)  # total 100
        analyzer.add_pair(b"l" + b"\x02" * 32, 67)
        mean = analyzer.mean_kv_size(DOMINANT_CLASSES)
        assert mean == 100.0

    def test_size_distribution_points(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"A\x01", 98)  # 2 + 98 = 100
        analyzer.add_pair(b"A\x02", 98)
        analyzer.add_pair(b"A\x01\x02\x03", 96)  # 4 + 96 = 100
        analyzer.add_pair(b"A\x09", 198)  # 200
        points = analyzer.size_distribution(KVClass.TRIE_NODE_ACCOUNT)
        assert points == [(100, 3), (200, 1)]

    def test_size_modes(self):
        analyzer = SizeAnalyzer()
        for _ in range(5):
            analyzer.add_pair(b"A\x01", 98)
        analyzer.add_pair(b"A\x02", 198)
        modes = analyzer.size_distribution_modes(KVClass.TRIE_NODE_ACCOUNT, top=1)
        assert modes == [100]

    def test_observed_classes_ordering(self):
        analyzer = SizeAnalyzer()
        analyzer.add_pair(b"LastFast", 32)
        analyzer.add_pair(b"A\x01", 10)
        observed = analyzer.observed_classes()
        # Table I order puts TrieNodeAccount before LastFast.
        assert observed.index(KVClass.TRIE_NODE_ACCOUNT) < observed.index(
            KVClass.LAST_FAST
        )

    def test_empty_analyzer(self):
        analyzer = SizeAnalyzer()
        assert analyzer.total_pairs == 0
        assert analyzer.percentage(KVClass.CODE) == 0.0
        assert analyzer.mean_kv_size(DOMINANT_CLASSES) == 0.0
        assert analyzer.size_distribution(KVClass.CODE) == []
