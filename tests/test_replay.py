"""Unit tests for the replay engine's pieces.

The end-to-end ordering/differential properties live in
``tests/test_replay_properties.py``; this file pins down the parts in
isolation — partitioner stability, value synthesis, op application,
pacing (against a virtual clock), admission policies, fault retry, and
the report/config surfaces.
"""

from __future__ import annotations

import random
from zlib import crc32

import numpy as np
import pytest

from repro.core.trace import OpType, TraceRecord, write_trace_v2
from repro.errors import ReplayError, ReplayOverloadError
from repro.obs import MetricsRegistry
from repro.replay import (
    ClosedLoopPacer,
    ReplayConfig,
    ReplayReport,
    TokenBucketPacer,
    apply_op,
    chunk_shards,
    key_shards,
    make_pacer,
    make_store,
    replay_trace,
    shard_of,
    synth_value,
)
from repro.replay.apply import OP_DELETE, OP_READ, OP_SCAN, OP_WRITE


# ---------------------------------------------------------------------------
# partitioner
# ---------------------------------------------------------------------------


def test_shard_of_is_stable_and_bounded():
    keys = [b"key-%d" % i for i in range(200)]
    for num_shards in (1, 2, 3, 8):
        shards = [shard_of(key, num_shards) for key in keys]
        assert all(0 <= s < num_shards for s in shards)
        # stable: same mapping on a second pass (crc32, not hash())
        assert shards == [shard_of(key, num_shards) for key in keys]
    assert all(shard_of(key, 1) == 0 for key in keys)


def test_shard_of_matches_crc32():
    assert shard_of(b"abc", 7) == crc32(b"abc") % 7


def test_key_shards_vectorized_matches_scalar():
    keys = [b"k%d" % i for i in range(50)]
    vec = key_shards(keys, 4)
    assert vec.tolist() == [shard_of(key, 4) for key in keys]


def test_chunk_shards_broadcasts_through_key_ids():
    from repro.core.columnar import TraceChunk

    keys = [b"a", b"b", b"c"]
    chunk = TraceChunk(
        ops=np.zeros(5, dtype=np.uint8),
        value_sizes=np.zeros(5, dtype=np.uint32),
        blocks=np.zeros(5, dtype=np.uint32),
        key_ids=np.array([2, 0, 1, 2, 0], dtype=np.uint32),
        keys=keys,
    )
    shards = chunk_shards(chunk, 3)
    expected = [shard_of(keys[i], 3) for i in (2, 0, 1, 2, 0)]
    assert shards.tolist() == expected


def test_shards_balance_roughly():
    rng = random.Random(5)
    keys = [rng.randbytes(16) for _ in range(4000)]
    counts = np.bincount(key_shards(keys, 4), minlength=4)
    assert counts.min() > 500  # no starved shard on random keys


# ---------------------------------------------------------------------------
# value synthesis + op application
# ---------------------------------------------------------------------------


def test_synth_value_deterministic_and_sized():
    assert synth_value(b"k", 0) == b""
    assert len(synth_value(b"k", 3)) == 3
    assert len(synth_value(b"k", 100)) == 100
    assert synth_value(b"k", 100) == synth_value(b"k", 100)
    # a function of the key, not only the size
    assert synth_value(b"k1", 100) != synth_value(b"k2", 100)


def test_apply_op_semantics():
    store = make_store("memdb")
    assert apply_op(store, OP_WRITE, b"k", 32, 64) == 32
    assert store.get(b"k") == synth_value(b"k", 32)
    assert apply_op(store, OP_READ, b"k", 0, 64) == 32
    assert apply_op(store, OP_READ, b"missing", 0, 64) == 0  # miss replays as miss
    assert apply_op(store, OP_DELETE, b"k", 0, 64) == 0
    assert not store.has(b"k")
    apply_op(store, OP_DELETE, b"k", 0, 64)  # blind delete is fine


def test_apply_op_scan_bounded():
    store = make_store("memdb")
    for i in range(10):
        apply_op(store, OP_WRITE, b"s%02d" % i, 8, 64)
    assert apply_op(store, OP_SCAN, b"s", 0, 3) == 24  # 3 pairs * 8 bytes
    assert apply_op(store, OP_SCAN, b"s", 0, 0) == 0


def test_apply_op_unknown_opcode():
    with pytest.raises(ValueError, match="unknown trace opcode"):
        apply_op(make_store("memdb"), 99, b"k", 0, 64)


# ---------------------------------------------------------------------------
# pacing
# ---------------------------------------------------------------------------


class VirtualClock:
    def __init__(self):
        self.now = 0.0
        self.slept: list[float] = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


def test_closed_loop_pacer_never_blocks():
    pacer = ClosedLoopPacer()
    for _ in range(1000):
        pacer.acquire()


def test_make_pacer():
    assert isinstance(make_pacer(None), ClosedLoopPacer)
    assert isinstance(make_pacer(0), ClosedLoopPacer)
    assert isinstance(make_pacer(100.0), TokenBucketPacer)


def test_token_bucket_paces_to_target_rate():
    clock = VirtualClock()
    pacer = TokenBucketPacer(100.0, burst=1.0, clock=clock.clock, sleep=clock.sleep)
    for _ in range(101):
        pacer.acquire()
    # 101 ops at 100 ops/s from a 1-token bucket: ~1 virtual second
    assert clock.now == pytest.approx(1.0, rel=0.05)


def test_token_bucket_burst_caps_catch_up():
    clock = VirtualClock()
    pacer = TokenBucketPacer(100.0, burst=5.0, clock=clock.clock, sleep=clock.sleep)
    clock.now += 60.0  # a long stall refills at most `burst` tokens
    for _ in range(5):
        pacer.acquire()
    assert clock.slept == []  # burst satisfied without sleeping
    pacer.acquire()
    assert clock.slept  # sixth op must wait


def test_token_bucket_rejects_bad_rate():
    with pytest.raises(ValueError):
        TokenBucketPacer(0)
    with pytest.raises(ValueError):
        TokenBucketPacer(10.0, burst=0)


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"workers": 0},
        {"executor": "fiber"},
        {"admission": "random-drop"},
        {"queue_depth": 0},
        {"scan_limit": -1},
        {"latency_sample": 0},
        {"pace": -5.0},
        {"workers": 2, "executor": "process", "pace": 100.0},
    ],
)
def test_config_validation_rejects(kwargs):
    with pytest.raises(ReplayError):
        ReplayConfig(**kwargs).validated()


def test_unknown_backend_fails_fast(tmp_path):
    path = tmp_path / "t.v2"
    write_trace_v2(path, [TraceRecord(OpType.WRITE, b"Ak", 8, 0)])
    with pytest.raises(ValueError, match="unknown replay backend"):
        replay_trace(path, ReplayConfig(backend="rocksdb"))


# ---------------------------------------------------------------------------
# engine behaviors (small traces, thread executor)
# ---------------------------------------------------------------------------


def _write_trace(path, records):
    write_trace_v2(path, records, chunk_size=64)
    return path


def _mixed_records(n=300, keys=24, seed=3):
    rng = random.Random(seed)
    pool = [b"A" + bytes([65 + i]) * 4 for i in range(keys)]
    records = []
    for i in range(n):
        roll = rng.random()
        key = rng.choice(pool)
        if roll < 0.5:
            records.append(TraceRecord(OpType.WRITE, key, rng.randint(8, 64), 0))
        elif roll < 0.85:
            records.append(TraceRecord(OpType.READ, key, 0, 0))
        elif roll < 0.95:
            records.append(TraceRecord(OpType.DELETE, key, 0, 0))
        else:
            records.append(TraceRecord(OpType.SCAN, key, 0, 0))
    return records


def test_report_counts_and_render(tmp_path):
    records = _mixed_records()
    path = _write_trace(tmp_path / "t.v2", records)
    report = replay_trace(path, ReplayConfig(), registry=MetricsRegistry())
    assert report.total_records == len(records)
    assert report.applied == len(records)
    assert report.failed == 0 and report.dropped == 0
    assert sum(report.per_op.values()) == len(records)
    assert report.final_len == sum(report.shard_lens)
    assert report.fingerprint is not None
    assert report.fingerprint.count == report.final_len
    text = report.render()
    assert "inline executor" in text
    assert "fingerprint" in text
    assert report.summary_line() in str(report.summary_line())
    assert report.ops_per_s > 0


def test_report_ops_per_s_zero_elapsed():
    report = ReplayReport(
        backend="memdb",
        executor="inline",
        workers=1,
        total_records=0,
        applied=0,
        dropped=0,
        failed=0,
        fault_retries=0,
        barriers=0,
        elapsed_s=0.0,
        final_len=0,
        per_op={},
        shard_lens=(0,),
    )
    assert report.ops_per_s == 0.0


def test_thread_executor_barriers_on_scans(tmp_path):
    records = [TraceRecord(OpType.WRITE, b"Ak%d" % i, 16, 0) for i in range(50)]
    records += [TraceRecord(OpType.SCAN, b"A", 0, 0)] * 4
    path = _write_trace(tmp_path / "t.v2", records)
    registry = MetricsRegistry()
    report = replay_trace(
        path, ReplayConfig(workers=3, executor="thread"), registry=registry
    )
    assert report.barriers == 4
    assert report.per_op["scan"] == 4
    snap = registry.snapshot()
    assert snap.get_value("repro_replay_barriers_total") == 4
    # queue-depth gauges exist and ended at zero
    family = snap.family("repro_replay_queue_depth")
    assert len(family.series) == 3
    assert all(value == 0 for value in family.series.values())


def test_thread_scan_sees_global_state(tmp_path):
    """A barriered scan must see keys from every shard, merged in order."""
    keys = [b"Ak%02d" % i for i in range(40)]
    num_shards = 4
    assert len({shard_of(key, num_shards) for key in keys}) > 1
    records = [TraceRecord(OpType.WRITE, key, 8, 0) for key in keys]
    records.append(TraceRecord(OpType.SCAN, b"A", 0, 0))
    path = _write_trace(tmp_path / "t.v2", records)
    registry = MetricsRegistry()
    report = replay_trace(
        path,
        ReplayConfig(workers=num_shards, executor="thread", scan_limit=1000),
        registry=registry,
    )
    snap = registry.snapshot()
    # the scan touched every one of the 40 values (8 bytes each)
    assert snap.get_value("repro_replay_bytes_total", op="scan") == 40 * 8
    assert report.final_len == 40


def test_admission_drop_sheds_only_reads(tmp_path):
    records = _mixed_records(n=500)
    path = _write_trace(tmp_path / "t.v2", records)
    registry = MetricsRegistry()
    config = ReplayConfig(
        workers=2, executor="thread", queue_depth=1, admission="drop"
    )
    report = replay_trace(path, config, registry=registry)
    assert report.total_records == len(records)
    assert report.applied + report.dropped + report.failed == len(records)
    snap = registry.snapshot()
    for op in ("write", "update", "delete", "scan"):
        assert snap.get_value("repro_replay_dropped_total", default=0.0, op=op) == 0
    # dropping reads must not change the final state
    serial = replay_trace(path, ReplayConfig(), registry=MetricsRegistry())
    assert report.fingerprint == serial.fingerprint


def test_admission_abort_raises_overload(tmp_path):
    # every record hits one key -> one shard; depth-1 queue with a slow
    # store must overflow under admission=abort
    records = [TraceRecord(OpType.WRITE, b"Ahot", 8, 0) for _ in range(400)]
    path = _write_trace(tmp_path / "t.v2", records)

    class SlowStore:
        def __init__(self, inner):
            self.inner = inner

        def put(self, key, value):
            import time

            time.sleep(0.0005)
            self.inner.put(key, value)

        def __getattr__(self, name):
            return getattr(self.inner, name)

        def __len__(self):
            return len(self.inner)

    config = ReplayConfig(
        workers=2, executor="thread", queue_depth=1, admission="abort"
    )
    with pytest.raises(ReplayOverloadError):
        replay_trace(
            path,
            config,
            registry=MetricsRegistry(),
            store_factory=lambda shard: SlowStore(make_store("memdb")),
        )


def test_worker_exception_propagates_as_replay_error(tmp_path):
    records = [TraceRecord(OpType.WRITE, b"Ak%d" % i, 8, 0) for i in range(200)]
    path = _write_trace(tmp_path / "t.v2", records)

    class BrokenStore:
        def __init__(self, inner):
            self.inner = inner
            self.puts = 0

        def put(self, key, value):
            self.puts += 1
            if self.puts > 5:
                raise RuntimeError("disk on fire")
            self.inner.put(key, value)

        def __getattr__(self, name):
            return getattr(self.inner, name)

        def __len__(self):
            return len(self.inner)

    with pytest.raises(ReplayError, match="disk on fire"):
        replay_trace(
            path,
            ReplayConfig(workers=2, executor="thread"),
            registry=MetricsRegistry(),
            store_factory=lambda shard: BrokenStore(make_store("memdb")),
        )


def test_transient_faults_retried_once(tmp_path):
    from repro.errors import TransientIOError

    records = [TraceRecord(OpType.WRITE, b"Ak%d" % i, 8, 0) for i in range(60)]
    path = _write_trace(tmp_path / "t.v2", records)

    class FlakyStore:
        """Fails every 7th put once; the retry always succeeds."""

        def __init__(self, inner):
            self.inner = inner
            self.calls = 0
            self.last_failed_call = -1

        def put(self, key, value):
            self.calls += 1
            if self.calls % 7 == 0 and self.last_failed_call != self.calls - 1:
                self.last_failed_call = self.calls
                raise TransientIOError("blip")
            self.inner.put(key, value)

        def __getattr__(self, name):
            return getattr(self.inner, name)

        def __len__(self):
            return len(self.inner)

    registry = MetricsRegistry()
    report = replay_trace(
        path,
        ReplayConfig(),
        registry=registry,
        store_factory=lambda shard: FlakyStore(make_store("memdb")),
    )
    assert report.fault_retries > 0
    assert report.failed == 0
    assert report.applied == len(records)
    snap = registry.snapshot()
    assert snap.get_value("repro_replay_faults_total", op="write") == report.fault_retries


def test_persistent_faults_count_as_failed(tmp_path):
    from repro.errors import TransientIOError

    records = [TraceRecord(OpType.WRITE, b"Ak%d" % i, 8, 0) for i in range(10)]
    path = _write_trace(tmp_path / "t.v2", records)

    class DeadStore:
        def __init__(self, inner):
            self.inner = inner

        def put(self, key, value):
            raise TransientIOError("gone")

        def __getattr__(self, name):
            return getattr(self.inner, name)

        def __len__(self):
            return len(self.inner)

    report = replay_trace(
        path,
        ReplayConfig(fingerprint=False),
        registry=MetricsRegistry(),
        store_factory=lambda shard: DeadStore(make_store("memdb")),
    )
    assert report.failed == len(records)
    assert report.applied == 0
    assert report.total_records == len(records)


def test_store_factory_rejected_by_process_executor(tmp_path):
    path = _write_trace(tmp_path / "t.v2", [TraceRecord(OpType.WRITE, b"Ak", 8, 0)])
    with pytest.raises(ReplayError, match="store_factory"):
        replay_trace(
            path,
            ReplayConfig(workers=2, executor="process"),
            registry=MetricsRegistry(),
            store_factory=lambda shard: make_store("memdb"),
        )


def test_paced_replay_applies_everything(tmp_path):
    records = _mixed_records(n=120)
    path = _write_trace(tmp_path / "t.v2", records)
    report = replay_trace(
        path, ReplayConfig(pace=1_000_000.0), registry=MetricsRegistry()
    )
    assert report.applied == len(records)
    assert report.pace == 1_000_000.0
