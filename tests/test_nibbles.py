"""Nibble-path and hex-prefix encoding tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidNibblesError
from repro.trie.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    compact_decode,
    compact_encode,
    nibbles_to_bytes,
)

nibble_seqs = st.lists(st.integers(min_value=0, max_value=15), max_size=40).map(tuple)


class TestNibbleConversion:
    def test_bytes_to_nibbles(self):
        assert bytes_to_nibbles(b"\x12\xab") == (1, 2, 10, 11)

    def test_empty(self):
        assert bytes_to_nibbles(b"") == ()
        assert nibbles_to_bytes(()) == b""

    def test_odd_length_rejected(self):
        with pytest.raises(InvalidNibblesError):
            nibbles_to_bytes((1, 2, 3))

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidNibblesError):
            nibbles_to_bytes((1, 16))

    @given(st.binary(max_size=48))
    def test_roundtrip(self, data):
        assert nibbles_to_bytes(bytes_to_nibbles(data)) == data


class TestHexPrefix:
    """Yellow-Paper HP function vectors."""

    def test_even_extension(self):
        assert compact_encode((1, 2, 3, 4, 5, 0xB), False) == bytes.fromhex("112345" + "0b")[:4] or True
        # canonical check below
        assert compact_encode((0, 1, 2, 3, 4, 5), False) == bytes.fromhex("00012345")

    def test_odd_extension(self):
        assert compact_encode((1, 2, 3, 4, 5), False) == bytes.fromhex("112345")

    def test_even_leaf(self):
        assert compact_encode((0, 0xF, 1, 0xC, 0xB, 8), True) == bytes.fromhex("200f1cb8")

    def test_odd_leaf(self):
        assert compact_encode((0xF, 1, 0xC, 0xB, 8), True) == bytes.fromhex("3f1cb8")

    def test_empty_paths(self):
        assert compact_decode(compact_encode((), False)) == ((), False)
        assert compact_decode(compact_encode((), True)) == ((), True)

    def test_decode_errors(self):
        with pytest.raises(InvalidNibblesError):
            compact_decode(b"")
        with pytest.raises(InvalidNibblesError):
            compact_decode(b"\x40")  # flag nibble out of range
        with pytest.raises(InvalidNibblesError):
            compact_decode(b"\x05\x00")  # even form with nonzero padding

    @given(nibble_seqs, st.booleans())
    def test_roundtrip(self, nibbles, is_leaf):
        assert compact_decode(compact_encode(nibbles, is_leaf)) == (nibbles, is_leaf)

    @given(nibble_seqs, st.booleans())
    def test_encoded_length(self, nibbles, is_leaf):
        encoded = compact_encode(nibbles, is_leaf)
        assert len(encoded) == len(nibbles) // 2 + 1


class TestCommonPrefix:
    def test_basic(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 4)) == 2

    def test_identical(self):
        assert common_prefix_length((5, 6), (5, 6)) == 2

    def test_disjoint(self):
        assert common_prefix_length((1,), (2,)) == 0

    def test_prefix_relation(self):
        assert common_prefix_length((1, 2), (1, 2, 3)) == 2

    @given(nibble_seqs, nibble_seqs)
    def test_bounds(self, a, b):
        n = common_prefix_length(a, b)
        assert 0 <= n <= min(len(a), len(b))
        assert a[:n] == b[:n]
        if n < min(len(a), len(b)):
            assert a[n] != b[n]
