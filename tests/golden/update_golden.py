"""Regenerate the golden findings report.

Run from the repository root:

    PYTHONPATH=src:. python tests/golden/update_golden.py

Only do this when a deliberate change to the workload generator, sync
driver, analysis pipeline, or report formatting alters the output.
Review the diff of ``findings_report.txt`` before committing — every
changed line is a behavioural change the golden test would otherwise
have caught.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from tests.golden_utils import (  # noqa: E402
    FINDINGS_GOLDEN,
    build_analyses_from_scratch,
    build_golden_report_text,
)


def main() -> None:
    cache, bare = build_analyses_from_scratch()
    text = build_golden_report_text(cache, bare)
    FINDINGS_GOLDEN.write_text(text, encoding="utf-8")
    print(f"wrote {FINDINGS_GOLDEN} ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
