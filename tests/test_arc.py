"""ARC cache policy tests."""

from __future__ import annotations

import random

import pytest

from repro.cachesim import ARCPolicy, CacheSimulator, LRUPolicy
from repro.core.trace import OpType, TraceRecord
from repro.errors import CacheSimError


def R(key, op=OpType.READ):
    return TraceRecord(op, key, 10, 0)


class TestBasics:
    def test_hit_after_miss(self):
        policy = ARCPolicy(4)
        assert not policy.on_read(b"k")
        assert policy.on_read(b"k")

    def test_capacity_bound(self):
        policy = ARCPolicy(8)
        for i in range(100):
            policy.on_read(b"key%02d" % i)
        assert len(policy) <= 8

    def test_delete_purges_everywhere(self):
        policy = ARCPolicy(4)
        policy.on_read(b"k")
        policy.on_read(b"k")  # now in T2
        policy.on_delete(b"k")
        assert not policy.on_read(b"k")

    def test_writes_do_not_admit(self):
        policy = ARCPolicy(4)
        policy.on_write(b"k")
        assert not policy.on_read(b"k")

    def test_capacity_validation(self):
        with pytest.raises(CacheSimError):
            ARCPolicy(1)

    def test_ghost_hit_adapts_target(self):
        policy = ARCPolicy(4)
        # Put one key in the frequent list so T1 evictions go through
        # _replace (ghosting into B1) rather than the T1-full fast path.
        policy.on_read(b"freq")
        policy.on_read(b"freq")
        for i in range(6):
            policy.on_read(bytes([i]))
        assert policy._b1, "flood should have ghosted T1 victims"
        p_before = policy.p
        ghost = next(iter(policy._b1))
        policy.on_read(ghost)
        assert policy.p >= p_before  # recency list got more budget


class TestScanResistance:
    def test_arc_survives_a_scan_flood_better_than_lru(self):
        """ARC's claim to fame: one-shot floods don't evict the hot set."""
        rng = random.Random(13)
        hot = [b"hot%d" % i for i in range(6)]
        trace = []
        # Warm the hot set into the frequent list.
        for _ in range(40):
            trace.append(R(hot[rng.randrange(6)]))
        # Flood with once-read keys (the Finding 3 tail), interleaving
        # occasional hot reads.
        for step in range(3000):
            trace.append(R(b"cold%06d" % step))
            if step % 3 == 0:
                trace.append(R(hot[rng.randrange(6)]))
        capacity = 12
        lru = CacheSimulator(LRUPolicy(capacity)).replay(trace)
        arc = CacheSimulator(ARCPolicy(capacity)).replay(trace)
        assert arc.hit_rate > lru.hit_rate

    def test_on_real_trace_not_catastrophic(self, trace_pair):
        _, bare_result = trace_pair
        capacity = 512
        lru = CacheSimulator(LRUPolicy(capacity)).replay(bare_result.records)
        arc = CacheSimulator(ARCPolicy(capacity)).replay(bare_result.records)
        # ARC stays within striking distance of LRU on the real mix
        # (and usually ahead); the point is it never collapses.
        assert arc.hit_rate > 0.5 * lru.hit_rate
