"""Artifact-compatible output writer tests."""

from __future__ import annotations

from repro.core.artifact import (
    read_kv_size_distribution,
    write_correlation_output,
    write_kv_size_distribution,
    write_op_distribution,
)
from repro.core.correlation import CorrelationAnalyzer, CorrelationConfig
from repro.core.opdist import OpDistAnalyzer
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType, TraceRecord


def _sizes():
    analyzer = SizeAnalyzer()
    analyzer.add_pair(b"A\x01", 98)
    analyzer.add_pair(b"A\x02", 98)
    analyzer.add_pair(b"A\x03", 198)
    analyzer.add_pair(b"LastFast", 32)
    return analyzer


def _records():
    ta1, ta2 = b"A\x01", b"A\x02"
    return [
        TraceRecord(OpType.READ, ta1, 100, 1),
        TraceRecord(OpType.READ, ta2, 100, 1),
        TraceRecord(OpType.READ, ta1, 100, 1),
        TraceRecord(OpType.READ, ta2, 100, 1),
        TraceRecord(OpType.WRITE, ta1, 100, 1),
        TraceRecord(OpType.DELETE, ta2, 0, 1),
    ]


class TestSizeDistributionFiles:
    def test_writes_one_file_per_class(self, tmp_path):
        written = write_kv_size_distribution(_sizes(), tmp_path)
        names = {p.name for p in written}
        assert "TrieNodeAccount.txt" in names
        assert "LastFast.txt" in names

    def test_file_format_roundtrip(self, tmp_path):
        write_kv_size_distribution(_sizes(), tmp_path)
        points = read_kv_size_distribution(tmp_path / "TrieNodeAccount.txt")
        assert points == [(100, 2), (200, 1)]

    def test_lines_are_size_count(self, tmp_path):
        write_kv_size_distribution(_sizes(), tmp_path)
        content = (tmp_path / "LastFast.txt").read_text()
        assert content == "40 1\n"  # key 8 + value 32


class TestOpDistributionFiles:
    def test_per_class_per_op_files(self, tmp_path):
        opdist = OpDistAnalyzer().consume(_records())
        written = write_op_distribution(opdist, tmp_path)
        names = {p.name for p in written}
        assert "TrieNodeAccount_read_with_key_dis.txt" in names
        assert "TrieNodeAccount_write_with_key_dis.txt" in names
        assert "TrieNodeAccount_delete_with_key_dis.txt" in names

    def test_key_count_lines(self, tmp_path):
        opdist = OpDistAnalyzer().consume(_records())
        write_op_distribution(opdist, tmp_path)
        lines = (
            (tmp_path / "TrieNodeAccount_read_with_key_dis.txt")
            .read_text()
            .strip()
            .splitlines()
        )
        parsed = {line.split()[0]: int(line.split()[1]) for line in lines}
        assert parsed == {"4101": 2, "4102": 2}


class TestCorrelationFiles:
    def _results(self):
        analyzer = CorrelationAnalyzer(CorrelationConfig(distances=(0, 4)))
        analyzer.consume(_records())
        return analyzer.compute()

    def test_category_and_sorted_logs(self, tmp_path):
        written = write_correlation_output(self._results(), tmp_path)
        names = {p.name for p in written}
        assert "freq-category-0.log" in names
        assert "freq-sorted-0.log" in names
        assert "freq-category-4.log" in names

    def test_pair_histogram_files(self, tmp_path):
        write_correlation_output(self._results(), tmp_path)
        matches = list(tmp_path.glob("Dist-0-*-freq.log"))
        assert matches
        lines = matches[0].read_text().strip().splitlines()
        for line in lines:
            frequency, num_pairs = line.split()
            assert int(frequency) >= 2 and int(num_pairs) >= 1

    def test_category_totals_match_analyzer(self, tmp_path):
        results = self._results()
        write_correlation_output(results, tmp_path)
        lines = (tmp_path / "freq-category-0.log").read_text().strip().splitlines()
        total = sum(int(line.split()[-1]) for line in lines)
        assert total == sum(results[0].class_pair_counts.values())
