"""Freezer (ancient store) tests."""

from __future__ import annotations

import pytest

from repro.core.classes import KVClass, classify_key
from repro.core.trace import OpType
from repro.errors import FreezerError
from repro.gethdb import schema
from repro.gethdb.database import DBConfig, GethDatabase
from repro.gethdb.freezer import Freezer


def write_block(db: GethDatabase, number: int) -> bytes:
    block_hash = bytes([number % 256]) * 32
    db.write_now(schema.header_key(number, block_hash), b"header%d" % number)
    db.write_now(schema.header_td_key(number, block_hash), b"td")
    db.write_now(schema.canonical_hash_key(number), block_hash)
    db.write_now(schema.body_key(number, block_hash), b"body%d" % number)
    db.write_now(schema.receipts_key(number, block_hash), b"receipts%d" % number)
    return block_hash


class TestFreezer:
    def test_nothing_frozen_below_threshold(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        freezer = Freezer(db, threshold=16)
        for number in range(10):
            write_block(db, number)
        assert freezer.maybe_freeze(head_number=10) == 0
        assert freezer.frozen_blocks == 0

    def test_migration_moves_and_deletes(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        freezer = Freezer(db, threshold=4, batch_blocks=100)
        hashes = {n: write_block(db, n) for n in range(12)}
        migrated = freezer.maybe_freeze(head_number=12)
        db.commit_batch()
        assert migrated == 8  # blocks 0..7 fall past the threshold
        for number in range(8):
            assert freezer.ancient_header(number) == b"header%d" % number
            assert freezer.ancient_body(number) == b"body%d" % number
            assert freezer.ancient_receipts(number) == b"receipts%d" % number
            assert not db.has(schema.header_key(number, hashes[number]))
            assert not db.has(schema.body_key(number, hashes[number]))
            assert not db.has(schema.receipts_key(number, hashes[number]))
        for number in range(8, 12):
            assert db.has(schema.header_key(number, hashes[number]))

    def test_batch_limit_respected(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        freezer = Freezer(db, threshold=2, batch_blocks=3)
        for number in range(20):
            write_block(db, number)
        assert freezer.maybe_freeze(head_number=20) == 3
        assert freezer.maybe_freeze(head_number=20) == 3
        assert freezer.frozen_until == 6

    def test_emits_scan_and_deletes(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        freezer = Freezer(db, threshold=1, batch_blocks=1)
        write_block(db, 0)
        db.collector.clear()
        freezer.maybe_freeze(head_number=2)
        db.commit_batch()
        records = db.collector.records
        scans = [r for r in records if r.op is OpType.SCAN]
        deletes = [r for r in records if r.op is OpType.DELETE]
        assert len(scans) == 1
        assert classify_key(scans[0].key) is KVClass.BLOCK_HEADER
        # 3 header-class keys + body + receipts
        assert len(deletes) == 5

    def test_skips_missing_blocks(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        freezer = Freezer(db, threshold=1, batch_blocks=10)
        # No block data written at all.
        assert freezer.maybe_freeze(head_number=5) == 4
        assert freezer.frozen_blocks == 0  # nothing to move, no crash

    def test_invalid_threshold(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        with pytest.raises(FreezerError):
            Freezer(db, threshold=0)

    def test_idempotent_when_caught_up(self):
        db = GethDatabase(DBConfig.bare_trace_config())
        freezer = Freezer(db, threshold=2, batch_blocks=10)
        for number in range(6):
            write_block(db, number)
        freezer.maybe_freeze(head_number=6)
        assert freezer.maybe_freeze(head_number=6) == 0
