"""Distance-based correlation analysis tests (Figures 4-7)."""

from __future__ import annotations

import pytest

from repro.core.classes import KVClass
from repro.core.correlation import (
    CorrelationAnalyzer,
    CorrelationConfig,
    class_pair,
    correlation_summary,
    format_class_pair,
)
from repro.core.trace import OpType, TraceRecord


def reads(keys):
    return [TraceRecord(OpType.READ, k, 10, i) for i, k in enumerate(keys)]


TA1 = b"A\x01"
TA2 = b"A\x02"
TS1 = b"O" + b"\x01" * 32 + b"\x05"
CODE1 = b"c" + b"\x01" * 32


class TestConfig:
    def test_scan_correlation_rejected(self):
        with pytest.raises(ValueError):
            CorrelationConfig(op=OpType.SCAN)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            CorrelationConfig(distances=(-1,))

    def test_min_occurrence_validated(self):
        with pytest.raises(ValueError):
            CorrelationConfig(min_occurrence=0)


class TestClassPair:
    def test_canonical_ordering(self):
        pair1 = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.CODE)
        pair2 = class_pair(KVClass.CODE, KVClass.TRIE_NODE_ACCOUNT)
        assert pair1 == pair2

    def test_format_uses_abbreviations(self):
        pair = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE)
        assert format_class_pair(pair) == "TA-TS"


class TestDistanceCounting:
    def test_adjacent_pair_at_distance_zero(self):
        # (TA1, TA2) adjacent twice -> qualifies with count 2.
        analyzer = CorrelationAnalyzer(CorrelationConfig(distances=(0,)))
        analyzer.consume(reads([TA1, TA2, TA1, TA2]))
        result = analyzer.compute()[0]
        pair = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)
        # pairs at d0: (TA1,TA2), (TA2,TA1), (TA1,TA2) -> key pair count 3
        assert result.class_pair_counts[pair] == 3

    def test_min_occurrence_filters_one_offs(self):
        analyzer = CorrelationAnalyzer(CorrelationConfig(distances=(0,)))
        analyzer.consume(reads([TA1, TS1]))  # single co-occurrence
        result = analyzer.compute()[0]
        assert result.class_pair_counts == {}

    def test_distance_one_skips_one_read(self):
        # sequence TA1 X TA2, TA1 Y TA2: (TA1, TA2) at distance 1 twice.
        analyzer = CorrelationAnalyzer(CorrelationConfig(distances=(1,)))
        analyzer.consume(reads([TA1, CODE1, TA2, TA1, CODE1, TA2]))
        result = analyzer.compute()[1]
        pair = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)
        assert result.count_for(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT) >= 2
        assert pair in result.class_pair_counts

    def test_cross_class_pairs(self):
        analyzer = CorrelationAnalyzer(CorrelationConfig(distances=(0,)))
        analyzer.consume(reads([TA1, TS1, TA1, TS1, TA1]))
        result = analyzer.compute()[0]
        cross = result.count_for(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_STORAGE)
        assert cross == 4  # all four adjacencies are (TA1,TS1) unordered

    def test_self_pair_same_key(self):
        # The same key adjacent to itself (head-pointer style).
        analyzer = CorrelationAnalyzer(
            CorrelationConfig(op=OpType.UPDATE, distances=(0,))
        )
        records = [TraceRecord(OpType.UPDATE, b"LastHeader", 8, i) for i in range(5)]
        analyzer.consume(records)
        result = analyzer.compute()[0]
        pair = class_pair(KVClass.LAST_HEADER, KVClass.LAST_HEADER)
        assert result.class_pair_counts[pair] == 4

    def test_only_configured_op_considered(self):
        analyzer = CorrelationAnalyzer(CorrelationConfig(op=OpType.READ, distances=(0,)))
        mixed = [
            TraceRecord(OpType.READ, TA1, 1, 0),
            TraceRecord(OpType.UPDATE, TS1, 1, 0),
            TraceRecord(OpType.READ, TA2, 1, 0),
        ] * 2
        analyzer.consume(mixed)
        assert analyzer.num_ops == 4  # only the reads

    def test_max_ops_cap(self):
        analyzer = CorrelationAnalyzer(
            CorrelationConfig(distances=(0,), max_ops=3)
        )
        analyzer.consume(reads([TA1] * 10))
        assert analyzer.num_ops == 3


class TestResultAccessors:
    def _result(self):
        analyzer = CorrelationAnalyzer(CorrelationConfig(distances=(0, 4)))
        # strong intra-TA signal + weaker TA-TS cross signal
        seq = [TA1, TA2] * 6 + [TA1, TS1] * 3
        analyzer.consume(reads(seq))
        return analyzer, analyzer.compute()

    def test_top_pairs_ranking(self):
        _, results = self._result()
        top = results[0].top_pairs(2)
        assert top[0][0] == class_pair(
            KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT
        )

    def test_top_pairs_cross_filter(self):
        _, results = self._result()
        cross = results[0].top_pairs(3, cross_class=True)
        assert all(a is not b for (a, b), _ in cross)
        intra = results[0].top_pairs(3, cross_class=False)
        assert all(a is b for (a, b), _ in intra)

    def test_series(self):
        analyzer, results = self._result()
        pair = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)
        series = analyzer.series(results, pair)
        assert [d for d, _ in series] == [0, 4]
        assert series[0][1] >= series[1][1]  # decays with distance

    def test_frequency_histogram(self):
        analyzer = CorrelationAnalyzer(CorrelationConfig(distances=(0,)))
        analyzer.consume(reads([TA1, TA2] * 5))
        result = analyzer.compute()[0]
        pair = class_pair(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)
        histogram = result.frequency_histograms[pair]
        assert histogram == {9: 1}  # one key pair occurring 9 times
        assert result.max_pair_frequency(pair) == 9

    def test_max_frequency_missing_pair_is_zero(self):
        _, results = self._result()
        pair = class_pair(KVClass.CODE, KVClass.CODE)
        assert results[0].max_pair_frequency(pair) == 0


class TestConvenience:
    def test_correlation_summary(self):
        results = correlation_summary(reads([TA1, TA2] * 4), distances=(0, 1))
        assert set(results) == {0, 1}


class TestVectorizedEquivalence:
    """The numpy pair counter must match the reference loop exactly."""

    def _analyzer(self, seed: int, n: int):
        import random

        rng = random.Random(seed)
        pool = [b"A" + bytes([i]) for i in range(40)]
        pool += [b"O" + b"\x01" * 32 + bytes([i]) for i in range(20)]
        pool += [b"c" + bytes([i]) * 32 for i in range(5)]
        analyzer = CorrelationAnalyzer(
            CorrelationConfig(distances=(0, 1, 4, 16))
        )
        analyzer.consume(reads([rng.choice(pool) for _ in range(n)]))
        return analyzer

    def test_equivalence_random_trace(self):
        analyzer = self._analyzer(seed=3, n=2000)
        for distance in (0, 1, 4, 16):
            fast = analyzer._compute_distance_vectorized(distance)
            slow = analyzer._compute_distance_reference(distance)
            assert fast.class_pair_counts == slow.class_pair_counts
            assert fast.frequency_histograms == slow.frequency_histograms

    def test_large_traces_use_vectorized_path(self):
        analyzer = self._analyzer(seed=4, n=CorrelationAnalyzer.VECTORIZE_THRESHOLD + 10)
        result = analyzer.compute_distance(0)
        assert sum(result.class_pair_counts.values()) > 0

    def test_gap_exceeding_trace_is_empty(self):
        analyzer = self._analyzer(seed=5, n=5000)
        result = analyzer._compute_distance_vectorized(10_000)
        assert result.class_pair_counts == {}
