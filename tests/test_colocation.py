"""Correlation-aware co-location layout tests."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.cachesim.correlation_cache import CorrelationTable
from repro.errors import HybridStoreError
from repro.hybrid import (
    CorrelationLayout,
    LayoutEvaluator,
    hash_layout,
    key_order_layout,
)


def correlated_access_sequence(pairs=40, steps=2000, seed=6):
    """Accesses where key i is always followed by its partner."""
    rng = random.Random(seed)
    keys = [b"A%02d" % i for i in range(pairs)]
    # Partners deliberately far away in key order so key-order packing
    # splits every correlated pair across regions.
    partner = {k: b"z" + k for k in keys}
    sequence = []
    for _ in range(steps):
        key = keys[rng.randrange(pairs)]
        sequence.append(key)
        sequence.append(partner[key])
    return sequence


class TestCorrelationLayout:
    def _built_layout(self, sequence, capacity=8):
        table = CorrelationTable(window=1)
        table.learn(sequence[: len(sequence) // 2])
        layout = CorrelationLayout(region_capacity=capacity)
        layout.build(table, sequence, Counter(sequence))
        return layout

    def test_partners_share_regions(self):
        sequence = correlated_access_sequence()
        layout = self._built_layout(sequence)
        for key in set(sequence):
            if key.startswith(b"A"):
                assert layout.region_of(key) == layout.region_of(b"z" + key), key

    def test_region_capacity_respected(self):
        sequence = correlated_access_sequence()
        layout = self._built_layout(sequence, capacity=4)
        per_region = Counter(layout._region_of.values())
        assert max(per_region.values()) <= 4

    def test_unknown_key_gets_some_region(self):
        layout = CorrelationLayout()
        region = layout.region_of(b"never-seen")
        assert isinstance(region, int)
        assert layout.region_of(b"never-seen") == region  # stable

    def test_capacity_validation(self):
        with pytest.raises(HybridStoreError):
            CorrelationLayout(region_capacity=1)


class TestBaselines:
    def test_key_order_layout_packs_sorted(self):
        keys = [b"c", b"a", b"b", b"d"]
        placement = key_order_layout(keys, region_capacity=2)
        assert placement[b"a"] == placement[b"b"] == 0
        assert placement[b"c"] == placement[b"d"] == 1

    def test_hash_layout_bounds_regions(self):
        placement = hash_layout([bytes([i]) for i in range(100)], num_regions=7)
        assert set(placement.values()) <= set(range(7))


class TestEvaluator:
    def test_switch_counting(self):
        evaluator = LayoutEvaluator()
        placement = {b"a": 0, b"b": 0, b"c": 1}
        report = evaluator.evaluate("t", [b"a", b"b", b"c", b"a"], placement)
        assert report.accesses == 4
        assert report.region_switches == 2  # 0->1, 1->0
        assert report.regions_used == 2
        assert report.switch_rate == 0.5

    def test_empty_sequence(self):
        report = LayoutEvaluator().evaluate("t", [], {})
        assert report.switch_rate == 0.0

    def test_correlation_layout_beats_baselines(self):
        """The §V co-location claim: fewer region switches than the
        layouts real stores give for free."""
        sequence = correlated_access_sequence()
        table = CorrelationTable(window=1)
        table.learn(sequence[: len(sequence) // 2])
        layout = CorrelationLayout(region_capacity=8)
        layout.build(table, sequence, Counter(sequence))

        evaluator = LayoutEvaluator()
        correlated = evaluator.evaluate("correlation", sequence, layout.region_of)
        key_order = evaluator.evaluate(
            "key-order", sequence, key_order_layout(sequence, 8)
        )
        hashed = evaluator.evaluate(
            "hash", sequence, hash_layout(sequence, max(1, len(set(sequence)) // 8))
        )
        assert correlated.switch_rate < key_order.switch_rate
        assert correlated.switch_rate < hashed.switch_rate
        # Every correlated pair co-resides: at most every other access
        # switches regions.
        assert correlated.switch_rate <= 0.55