"""Report renderer tests (table/figure text output)."""

from __future__ import annotations

from repro.core.classes import KVClass
from repro.core.opdist import OpDistAnalyzer
from repro.core.report import (
    render_correlation_distance_series,
    render_correlation_frequency,
    render_frequency_distribution,
    render_op_table,
    render_read_ratio_table,
    render_size_distribution,
    render_table1,
)
from repro.core.sizes import SizeAnalyzer
from repro.core.trace import OpType, TraceRecord


def _size_analyzer():
    analyzer = SizeAnalyzer()
    for i in range(5):
        analyzer.add_pair(b"A" + bytes([i]), 100)
    analyzer.add_pair(b"LastHeader", 32)
    analyzer.add_pair(b"c" + b"\x01" * 32, 7000)
    return analyzer


def _opdist():
    records = [
        TraceRecord(OpType.WRITE, b"l" + b"\x01" * 32, 4, 1),
        TraceRecord(OpType.DELETE, b"l" + b"\x01" * 32, 0, 2),
        TraceRecord(OpType.READ, b"A\x01", 100, 1),
        TraceRecord(OpType.READ, b"A\x01", 100, 2),
        TraceRecord(OpType.SCAN, b"a", 500, 2),
    ]
    return OpDistAnalyzer().consume(records)


class TestTable1:
    def test_contains_class_rows(self):
        rendered = render_table1(_size_analyzer())
        assert "TrieNodeAccount" in rendered
        assert "LastHeader" in rendered
        assert "Code" in rendered

    def test_singleton_percentage_dashed(self):
        rendered = render_table1(_size_analyzer())
        header_row = [l for l in rendered.splitlines() if l.startswith("LastHeader")][0]
        assert " - " in header_row or header_row.rstrip().split()[2] == "-"

    def test_total_in_header(self):
        rendered = render_table1(_size_analyzer())
        assert "7 KV pairs" in rendered


class TestOpTable:
    def test_structure(self):
        rendered = render_op_table(_opdist(), "Table II analog")
        assert "Table II analog" in rendered
        assert "TxLookup" in rendered
        assert "Writes" in rendered and "Deletes" in rendered

    def test_zero_cells_dashed(self):
        rendered = render_op_table(_opdist(), "t")
        txl_row = [l for l in rendered.splitlines() if l.startswith("TxLookup")][0]
        assert "-" in txl_row  # TxLookup has no reads/scans

    def test_percentages_sum_sensibly(self):
        rendered = render_op_table(_opdist(), "t")
        txl_row = [l for l in rendered.splitlines() if l.startswith("TxLookup")][0]
        assert "50" in txl_row  # 50% writes / 50% deletes


class TestReadRatioTable:
    def test_renders_both_columns(self, cache_analysis, bare_analysis):
        rendered = render_read_ratio_table(
            bare_analysis,
            cache_analysis,
            [KVClass.TRIE_NODE_ACCOUNT, KVClass.SNAPSHOT_ACCOUNT],
        )
        assert "BareTrace" in rendered and "CacheTrace" in rendered
        assert "TrieNodeAccount" in rendered

    def test_bare_snapshot_ratio_dashed(self, cache_analysis, bare_analysis):
        rendered = render_read_ratio_table(
            bare_analysis, cache_analysis, [KVClass.SNAPSHOT_ACCOUNT]
        )
        row = [l for l in rendered.splitlines() if l.startswith("SnapshotAccount")][0]
        assert row.split()[1] == "-"  # class absent from BareTrace


class TestFigureRenderers:
    def test_size_distribution_panel(self):
        rendered = render_size_distribution(_size_analyzer(), KVClass.TRIE_NODE_ACCOUNT)
        assert "Figure 2 panel" in rendered
        assert "size=" in rendered

    def test_frequency_distribution_panel(self):
        rendered = render_frequency_distribution(
            _opdist(), KVClass.TRIE_NODE_ACCOUNT, OpType.READ
        )
        assert "freq=" in rendered and "keys=1" in rendered

    def test_correlation_distance_series(self, cache_analysis):
        results = cache_analysis.correlation(OpType.READ)
        pairs = [(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)]
        rendered = render_correlation_distance_series(results, pairs, "Figure 4 analog")
        assert "TA-TA" in rendered
        assert "d=0" in rendered

    def test_correlation_frequency(self, cache_analysis):
        results = cache_analysis.correlation(OpType.READ)
        pairs = [(KVClass.TRIE_NODE_ACCOUNT, KVClass.TRIE_NODE_ACCOUNT)]
        rendered = render_correlation_frequency(
            results, pairs, [0, 1024], "Figure 5 analog"
        )
        assert "distance 0" in rendered and "distance 1024" in rendered
